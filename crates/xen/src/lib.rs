//! # twin-xen — the Xen-like hypervisor substrate
//!
//! Everything the paper's hypervisor side needs:
//!
//! * [`xen::Xen`] — domains, domain switches (the overhead TwinDrivers
//!   eliminates), hypercalls, event channels, grant tables, softirqs;
//! * [`grant::GrantCache`] — the map-once/recycle grant table behind the
//!   zero-copy datapath: pool pages mapped on first touch, LRU-evicted
//!   at capacity, revocable per domain (the quarantine seam);
//! * [`support::HyperSupport`] — the ten hypervisor implementations of
//!   the fast-path support routines (paper §4.3, Table 1) and the
//!   **upcall** mechanism that forwards everything else to dom0 (§4.2),
//!   including the Figure 10 knob that forces fast-path routines onto
//!   the upcall path;
//! * [`hyperdrv`] — the modified loader that places the rewritten driver
//!   in the hypervisor, resolving its data references to dom0 addresses
//!   and giving it a guarded hypervisor stack (§5.2).
//!
//! The `twin-xen` crate deliberately contains *mechanism only*; the four
//! measured system configurations (native Linux, dom0, baseline Xen
//! guest, TwinDrivers guest) are assembled in the `twindrivers` core
//! crate.

pub mod domain;
pub mod grant;
pub mod hyperdrv;
pub mod support;
pub mod upcall;
pub mod xen;

pub use domain::{DomId, Domain, DomainKind};
pub use grant::{GrantAccess, GrantCache, GrantCacheStats};
pub use hyperdrv::{
    load_hypervisor_driver, HypervisorDriver, HYP_CODE_BASE, HYP_STACK_BASE, HYP_STACK_PAGES,
    UPCALL_RING_BASE, UPCALL_RING_PAGES, UPCALL_RING_SLOTS, UPCALL_STACK_BASE, UPCALL_STACK_PAGES,
};
pub use support::{HyperSupport, UPCALL_PORT};
pub use upcall::{
    Completion, QueuedUpcall, UpcallEngine, UpcallMode, UpcallStats, UPCALL_COMPLETION_PORT,
};
pub use xen::{DevGrantStats, GrantStats, Softirq, Xen};
