//! The hypervisor proper: domain switching, hypercalls, event channels,
//! grant tables and softirq work — with every operation charged to
//! [`CostDomain::Xen`] at the calibrated costs.

use crate::domain::{DomId, Domain, DomainKind};
use std::collections::BTreeMap;
use twin_machine::{CostDomain, Machine, SpaceId};
use twin_net::MacAddr;

/// Grant-table activity attributed to one NIC (the device whose traffic
/// caused the operation), so multi-NIC sweeps can see where grant cost
/// lands.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DevGrantStats {
    /// Pages mapped for this device's traffic.
    pub maps: u64,
    /// Pages unmapped for this device's traffic.
    pub unmaps: u64,
    /// Packet-sized grant copies performed for this device's traffic
    /// (the data movement zero-copy mode eliminates).
    pub copies: u64,
}

/// Grant-table statistics: totals plus a per-device breakdown for
/// operations whose causing NIC is known.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GrantStats {
    /// Pages mapped.
    pub maps: u64,
    /// Pages unmapped.
    pub unmaps: u64,
    /// Packet-sized grant copies (counted by the datapaths that perform
    /// them; pure bookkeeping — the copy cycles are charged at the copy
    /// site).
    pub copies: u64,
    /// Per-NIC breakdown, keyed by device id. Operations with no
    /// attributable device (none on the current datapaths) appear only
    /// in the totals.
    pub per_device: BTreeMap<u32, DevGrantStats>,
}

impl GrantStats {
    /// This device's breakdown (zeroes when it never caused a grant op).
    pub fn device(&self, dev: u32) -> DevGrantStats {
        self.per_device.get(&dev).copied().unwrap_or_default()
    }

    /// Activity since an `earlier` snapshot, as `self - earlier`
    /// (totals and per-device alike) — measurement windows take deltas,
    /// the counters themselves are monotonic.
    pub fn delta_since(&self, earlier: &GrantStats) -> GrantStats {
        let mut per_device = BTreeMap::new();
        for (&dev, d) in &self.per_device {
            let e = earlier.device(dev);
            per_device.insert(
                dev,
                DevGrantStats {
                    maps: d.maps - e.maps,
                    unmaps: d.unmaps - e.unmaps,
                    copies: d.copies - e.copies,
                },
            );
        }
        GrantStats {
            maps: self.maps - earlier.maps,
            unmaps: self.unmaps - earlier.unmaps,
            copies: self.copies - earlier.copies,
            per_device,
        }
    }
}

/// Deferred hypervisor work (the schedulable context in which the
/// hypervisor driver's interrupt handler runs, paper §4.4).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Softirq {
    /// Run the hypervisor driver's interrupt handler for a NIC.
    DriverIrq {
        /// Which NIC raised the interrupt.
        nic: u32,
    },
    /// Drain the deferred-upcall ring: raised when the ring crosses its
    /// high-water mark, so queued upcalls get a bounded-latency kick even
    /// if no burst-pass flush point arrives soon. Duplicate raises
    /// coalesce like any softirq; if a natural flush drained the ring
    /// first, the handler is a no-op.
    UpcallFlush,
    /// Run one budgeted NAPI poll pass over a masked NIC: raised while
    /// the device is in poll mode instead of [`Softirq::DriverIrq`] (the
    /// device's interrupt is masked, so nothing vectors). Duplicate
    /// raises coalesce per device, like the interrupt source.
    NapiPoll {
        /// Which NIC to poll.
        nic: u32,
    },
}

/// The Xen-like hypervisor state machine.
#[derive(Debug)]
pub struct Xen {
    /// All domains; index 0 is dom0.
    pub domains: Vec<Domain>,
    /// Currently running domain.
    pub current: DomId,
    /// Grant-table activity.
    pub grants: GrantStats,
    /// Pending softirq work.
    pub softirqs: Vec<Softirq>,
    /// Softirq raises coalesced into already-pending work.
    pub softirqs_coalesced: u64,
    /// Total domain switches performed.
    pub switches: u64,
    /// Total hypercalls serviced.
    pub hypercalls: u64,
    /// Total virtual interrupts delivered.
    pub virqs_sent: u64,
}

impl Xen {
    /// Creates the hypervisor with dom0 attached to `dom0_space`.
    pub fn new(dom0_space: SpaceId) -> Xen {
        Xen {
            domains: vec![Domain::new(
                DomId::DOM0,
                dom0_space,
                DomainKind::Driver,
                MacAddr::for_guest(0),
            )],
            current: DomId::DOM0,
            grants: GrantStats::default(),
            softirqs: Vec::new(),
            softirqs_coalesced: 0,
            switches: 0,
            hypercalls: 0,
            virqs_sent: 0,
        }
    }

    /// Creates a guest domain and returns its id.
    pub fn add_guest(&mut self, space: SpaceId, mac: MacAddr) -> DomId {
        let id = DomId(self.domains.len() as u32);
        self.domains
            .push(Domain::new(id, space, DomainKind::Guest, mac));
        id
    }

    /// Borrows a domain.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn domain(&self, id: DomId) -> &Domain {
        &self.domains[id.0 as usize]
    }

    /// Mutably borrows a domain.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn domain_mut(&mut self, id: DomId) -> &mut Domain {
        &mut self.domains[id.0 as usize]
    }

    /// Finds the guest owning a MAC address (receive demultiplexing,
    /// paper §5.3).
    pub fn guest_by_mac(&self, mac: MacAddr) -> Option<DomId> {
        self.domains
            .iter()
            .find(|d| d.mac == mac && d.kind == DomainKind::Guest)
            .map(|d| d.id)
    }

    /// Switches execution to another domain, charging the full cost of
    /// the address-space switch and its TLB/cache fallout — the dominant
    /// overhead the paper eliminates (§2).
    pub fn switch_to(&mut self, m: &mut Machine, to: DomId) {
        if to == self.current {
            return;
        }
        let c = m.cost.domain_switch;
        m.meter.charge_to(CostDomain::Xen, c);
        m.meter.count_event("domain_switch");
        self.switches += 1;
        self.current = to;
    }

    /// Charges one hypercall entry/exit.
    pub fn hypercall(&mut self, m: &mut Machine) {
        let c = m.cost.hypercall;
        m.meter.charge_to(CostDomain::Xen, c);
        m.meter.count_event("hypercall");
        self.hypercalls += 1;
    }

    /// Delivers a virtual interrupt (event) to a domain.
    pub fn send_virq(&mut self, m: &mut Machine, to: DomId, port: u32) {
        let c = m.cost.virq_deliver;
        m.meter.charge_to(CostDomain::Xen, c);
        m.meter.count_event("virq");
        self.virqs_sent += 1;
        self.domain_mut(to).pending_virqs.push(port);
    }

    /// Maps one granted page (baseline I/O-channel path).
    pub fn grant_map(&mut self, m: &mut Machine) {
        let c = m.cost.grant_map;
        m.meter.charge_to(CostDomain::Xen, c);
        m.meter.count_event("grant_map");
        self.grants.maps += 1;
    }

    /// [`Xen::grant_map`] with the causing NIC known: identical charge
    /// and event, plus the per-device attribution.
    pub fn grant_map_dev(&mut self, m: &mut Machine, dev: u32) {
        self.grant_map(m);
        self.grants.per_device.entry(dev).or_default().maps += 1;
    }

    /// Unmaps one granted page.
    pub fn grant_unmap(&mut self, m: &mut Machine) {
        let c = m.cost.grant_unmap;
        m.meter.charge_to(CostDomain::Xen, c);
        m.meter.count_event("grant_unmap");
        self.grants.unmaps += 1;
    }

    /// [`Xen::grant_unmap`] with the causing NIC known.
    pub fn grant_unmap_dev(&mut self, m: &mut Machine, dev: u32) {
        self.grant_unmap(m);
        self.grants.per_device.entry(dev).or_default().unmaps += 1;
    }

    /// Counts one packet-sized grant copy for a device. Bookkeeping
    /// only — the copy cycles are charged where the copy happens, so
    /// attribution (and the off-mode cycle totals) are untouched.
    pub fn note_grant_copy(&mut self, dev: Option<u32>) {
        self.grants.copies += 1;
        if let Some(dev) = dev {
            self.grants.per_device.entry(dev).or_default().copies += 1;
        }
    }

    /// Queues softirq work (driver interrupt deferred out of hard-irq
    /// context so dom0's virtual interrupt flag is respected, §4.4).
    ///
    /// Identical pending work is **coalesced**: raising `DriverIrq` for a
    /// NIC that already has one queued is a no-op, exactly like a level
    /// interrupt latched while its softirq is still pending — one handler
    /// pass will reap every descriptor the hardware filled meanwhile.
    pub fn raise_softirq(&mut self, work: Softirq) {
        if self.softirqs.contains(&work) {
            self.softirqs_coalesced += 1;
            return;
        }
        self.softirqs.push(work);
    }

    /// Takes pending softirq work if dom0's virtual interrupt flag
    /// permits running the driver interrupt handler.
    pub fn take_runnable_softirqs(&mut self) -> Vec<Softirq> {
        if !self.domain(DomId::DOM0).virq_enabled {
            return Vec::new();
        }
        std::mem::take(&mut self.softirqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> (Machine, Xen) {
        let mut m = Machine::new();
        let dom0 = m.new_space();
        (m, Xen::new(dom0))
    }

    #[test]
    fn switch_charges_xen_once_per_change() {
        let (mut m, mut xen) = mk();
        let g = m.new_space();
        let gid = xen.add_guest(g, MacAddr::for_guest(1));
        xen.switch_to(&mut m, gid);
        xen.switch_to(&mut m, gid); // no-op
        assert_eq!(xen.switches, 1);
        assert_eq!(m.meter.cycles(CostDomain::Xen), m.cost.domain_switch);
        xen.switch_to(&mut m, DomId::DOM0);
        assert_eq!(xen.switches, 2);
    }

    #[test]
    fn mac_demux_finds_guests_not_dom0() {
        let (mut m, mut xen) = mk();
        let g = m.new_space();
        let gid = xen.add_guest(g, MacAddr::for_guest(7));
        assert_eq!(xen.guest_by_mac(MacAddr::for_guest(7)), Some(gid));
        assert_eq!(
            xen.guest_by_mac(MacAddr::for_guest(0)),
            None,
            "dom0 is not a guest"
        );
        assert_eq!(xen.guest_by_mac(MacAddr::for_guest(99)), None);
    }

    #[test]
    fn virq_queues_and_charges() {
        let (mut m, mut xen) = mk();
        xen.send_virq(&mut m, DomId::DOM0, 3);
        assert_eq!(xen.domain(DomId::DOM0).pending_virqs, vec![3]);
        assert_eq!(m.meter.event("virq"), 1);
    }

    #[test]
    fn softirq_respects_dom0_virq_flag() {
        let (_m, mut xen) = mk();
        xen.raise_softirq(Softirq::DriverIrq { nic: 0 });
        xen.domain_mut(DomId::DOM0).virq_enabled = false;
        assert!(xen.take_runnable_softirqs().is_empty());
        xen.domain_mut(DomId::DOM0).virq_enabled = true;
        assert_eq!(xen.take_runnable_softirqs().len(), 1);
        assert!(xen.softirqs.is_empty());
    }

    #[test]
    fn softirqs_coalesce_duplicate_driver_irqs() {
        let (_m, mut xen) = mk();
        xen.raise_softirq(Softirq::DriverIrq { nic: 0 });
        xen.raise_softirq(Softirq::DriverIrq { nic: 0 });
        xen.raise_softirq(Softirq::DriverIrq { nic: 0 });
        assert_eq!(xen.softirqs.len(), 1, "one pending pass covers all");
        assert_eq!(xen.softirqs_coalesced, 2);
        assert_eq!(xen.take_runnable_softirqs().len(), 1);
    }

    #[test]
    fn softirq_coalescing_is_per_device() {
        // Each NIC is its own softirq source: duplicates coalesce only
        // within a device, and one pass carries every raised device in
        // raise order.
        let (_m, mut xen) = mk();
        xen.raise_softirq(Softirq::DriverIrq { nic: 0 });
        xen.raise_softirq(Softirq::DriverIrq { nic: 1 });
        xen.raise_softirq(Softirq::DriverIrq { nic: 0 });
        xen.raise_softirq(Softirq::DriverIrq { nic: 2 });
        xen.raise_softirq(Softirq::DriverIrq { nic: 1 });
        assert_eq!(xen.softirqs.len(), 3, "three devices pending");
        assert_eq!(xen.softirqs_coalesced, 2, "per-device duplicates only");
        let work = xen.take_runnable_softirqs();
        assert_eq!(
            work,
            vec![
                Softirq::DriverIrq { nic: 0 },
                Softirq::DriverIrq { nic: 1 },
                Softirq::DriverIrq { nic: 2 },
            ]
        );
        assert!(xen.softirqs.is_empty());
    }

    #[test]
    fn grant_ops_count() {
        let (mut m, mut xen) = mk();
        xen.grant_map(&mut m);
        xen.grant_unmap(&mut m);
        assert_eq!(
            xen.grants,
            GrantStats {
                maps: 1,
                unmaps: 1,
                ..GrantStats::default()
            }
        );
        assert!(m.meter.cycles(CostDomain::Xen) >= m.cost.grant_map + m.cost.grant_unmap);
    }

    #[test]
    fn grant_ops_attribute_per_device() {
        let (mut m, mut xen) = mk();
        xen.grant_map_dev(&mut m, 0);
        xen.grant_map_dev(&mut m, 2);
        xen.grant_unmap_dev(&mut m, 2);
        xen.grant_map(&mut m); // no attributable device
        xen.note_grant_copy(Some(2));
        xen.note_grant_copy(None);
        assert_eq!(xen.grants.maps, 3, "totals cover attributed and not");
        assert_eq!(xen.grants.unmaps, 1);
        assert_eq!(xen.grants.copies, 2);
        assert_eq!(
            xen.grants.device(2),
            DevGrantStats {
                maps: 1,
                unmaps: 1,
                copies: 1
            }
        );
        assert_eq!(xen.grants.device(0).maps, 1);
        assert_eq!(xen.grants.device(7), DevGrantStats::default());
        // Device-attributed ops charge and count exactly like the plain
        // ones: three maps and one unmap worth of Xen cycles.
        assert_eq!(m.meter.event("grant_map"), 3);
        assert_eq!(m.meter.event("grant_unmap"), 1);
    }

    #[test]
    fn grant_stats_delta() {
        let (mut m, mut xen) = mk();
        xen.grant_map_dev(&mut m, 1);
        let snap = xen.grants.clone();
        xen.grant_map_dev(&mut m, 1);
        xen.grant_unmap_dev(&mut m, 1);
        xen.note_grant_copy(Some(3));
        let d = xen.grants.delta_since(&snap);
        assert_eq!((d.maps, d.unmaps, d.copies), (1, 1, 1));
        assert_eq!(d.device(1).maps, 1);
        assert_eq!(d.device(3).copies, 1);
    }
}
