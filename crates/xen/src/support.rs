//! Hypervisor-side support routines (paper §4.3) and the upcall
//! mechanism (paper §4.2).
//!
//! The hypervisor implements only the ten fast-path routines of Table 1;
//! everything else the driver calls is forwarded to dom0 through a
//! synchronous upcall: save parameters, switch to the upcall stack,
//! (domain-switch to dom0 if running in a guest context), deliver a
//! synchronous virtual interrupt, run the dom0 routine, return via a
//! hypercall, switch back. For Figure 10, any subset of the fast-path
//! routines can be *forced* onto the upcall path.

use crate::domain::DomId;
use crate::xen::Xen;
use std::collections::BTreeSet;
use twin_kernel::{Dom0Kernel, SkBuff, TABLE1_FASTPATH};
use twin_machine::{CostDomain, Cpu, ExecMode, Fault, Machine};
use twin_svm::{Svm, CALL_XLAT_SYMBOL, SLOW_PATH_SYMBOL};

/// Event-channel port used for upcall requests.
pub const UPCALL_PORT: u32 = 31;

/// Hypervisor support state: which routines are forced to upcall, and
/// counters.
#[derive(Debug, Default)]
pub struct HyperSupport {
    /// Fast-path routines forced onto the upcall path (Figure 10 sweep).
    pub upcall_routines: BTreeSet<String>,
    /// Upcalls performed.
    pub upcalls: u64,
    /// Frames dropped because no guest matched the destination MAC.
    pub demux_misses: u64,
}

impl HyperSupport {
    /// Creates support state with every Table 1 routine implemented in
    /// the hypervisor (the paper's best configuration: "no upcalls were
    /// made").
    pub fn new() -> HyperSupport {
        HyperSupport::default()
    }

    /// Forces the first `n` fast-path routines (in Table 1 order,
    /// excluding `netif_rx`, which the paper always keeps native) onto
    /// the upcall path — the Figure 10 X axis.
    pub fn set_upcall_count(&mut self, n: usize) {
        self.upcall_routines = TABLE1_FASTPATH
            .iter()
            .filter(|r| **r != "netif_rx")
            .take(n)
            .map(|s| s.to_string())
            .collect();
    }

    /// Handles an extern call made by the *hypervisor* driver instance.
    /// Returns `None` if the name is not an SVM helper, a fast-path
    /// routine, or a known dom0 routine (i.e. truly unknown).
    ///
    /// Dispatch order matches the paper's loader resolution (§5.2):
    /// SVM helpers → hypervisor implementations → upcall stubs.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_extern(
        &mut self,
        name: &str,
        m: &mut Machine,
        cpu: &mut Cpu,
        kernel: &mut Dom0Kernel,
        xen: &mut Xen,
        svm: &mut Svm,
    ) -> Option<Result<(), Fault>> {
        match name {
            SLOW_PATH_SYMBOL => {
                let r = (|| {
                    let addr = cpu.arg(m, 0)? as u64;
                    svm.slow_path(m, addr)?;
                    Ok(())
                })();
                return Some(r);
            }
            CALL_XLAT_SYMBOL => {
                let r = (|| {
                    let t = cpu.arg(m, 0)? as u64;
                    let x = svm.translate_call(m, t)?;
                    cpu.set_reg(twin_isa::Reg::Eax, x as u32);
                    Ok(())
                })();
                return Some(r);
            }
            twin_rewriter::STACK_CHECK_SYMBOL => {
                let r = (|| {
                    let addr = cpu.arg(m, 0)? as u64;
                    let esp = cpu.reg(twin_isa::Reg::Esp) as u64;
                    // Accept accesses within one stack extent of esp.
                    let lo = esp.saturating_sub(4096 * 2);
                    let hi = esp + 4096 * 2;
                    if addr < lo || addr >= hi {
                        return Err(Fault::EnvFault(format!(
                            "stack check: access at {addr:#x} outside stack window"
                        )));
                    }
                    Ok(())
                })();
                return Some(r);
            }
            _ => {}
        }

        let is_fastpath = TABLE1_FASTPATH.contains(&name);
        let force_upcall = self.upcall_routines.contains(name);
        if is_fastpath && !force_upcall {
            kernel.trace.record(name);
            m.meter.push_domain(CostDomain::Xen);
            let r = self.native_impl(name, m, cpu, kernel, xen, svm);
            m.meter.pop_domain();
            return Some(r);
        }
        // Upcall stub: any routine dom0 implements (including forced
        // fast-path routines) is forwarded.
        if twin_kernel::KNOWN_ROUTINES.contains(&name) {
            return Some(self.upcall(name, m, cpu, kernel, xen));
        }
        None
    }

    /// The upcall path (paper §4.2).
    fn upcall(
        &mut self,
        name: &str,
        m: &mut Machine,
        cpu: &mut Cpu,
        kernel: &mut Dom0Kernel,
        xen: &mut Xen,
    ) -> Result<(), Fault> {
        self.upcalls += 1;
        m.meter.count_event("upcall");
        // Stub: save parameters, switch to the upcall stack.
        let c = m.cost.upcall_overhead;
        m.meter.charge_to(CostDomain::Xen, c);
        let back = xen.current;
        // Synchronous switch to dom0 if invoked from a guest context.
        xen.switch_to(m, DomId::DOM0);
        // Synchronous virtual interrupt to the dom0 upcall handler.
        xen.send_virq(m, DomId::DOM0, UPCALL_PORT);
        xen.domain_mut(DomId::DOM0).pending_virqs.pop();
        // The dom0 handler recovers parameters and invokes the support
        // routine; heap and registers are identical by construction, and
        // the stack parameters are read through the same cpu state.
        match kernel.handle_extern(name, m, cpu) {
            Some(r) => r?,
            None => return Err(Fault::UnknownExtern(name.to_string())),
        }
        // Return to the stub via hypercall, then back to the guest.
        xen.hypercall(m);
        xen.switch_to(m, back);
        Ok(())
    }

    /// Hypervisor-native implementations of the Table 1 routines.
    /// These use the stlb explicitly for driver-data access (modeled by
    /// charging the fast-path lookup) and the dom0-reserved buffer pool.
    fn native_impl(
        &mut self,
        name: &str,
        m: &mut Machine,
        cpu: &mut Cpu,
        kernel: &mut Dom0Kernel,
        xen: &mut Xen,
        svm: &mut Svm,
    ) -> Result<(), Fault> {
        use twin_isa::Reg;
        let dom0 = kernel.space;
        match name {
            "netdev_alloc_skb" => {
                let c = m.cost.skb_alloc;
                m.meter.charge(c);
                svm.charge_fast_path(m);
                let skb = kernel.hyper_pool.as_mut().and_then(|p| p.alloc(m, dom0));
                cpu.set_reg(Reg::Eax, skb.map(|s| s.0 as u32).unwrap_or(0));
            }
            "dev_kfree_skb_any" => {
                let c = m.cost.skb_alloc / 2;
                m.meter.charge(c);
                let skb = SkBuff(cpu.arg(m, 0)? as u64);
                if skb.0 != 0 {
                    kernel.free_skb(m, skb)?;
                }
                cpu.set_reg(Reg::Eax, 0);
            }
            "netif_rx" => {
                // The hypervisor's receive path: demultiplex on the
                // destination MAC and queue to the guest (paper §5.3).
                let demux_cycles = 220;
                m.meter.charge(demux_cycles);
                svm.charge_fast_path(m);
                let skb = SkBuff(cpu.arg(m, 0)? as u64);
                if skb.0 != 0 {
                    if let Some(frame) = skb.parse_frame(m, dom0)? {
                        match xen.guest_by_mac(frame.dst) {
                            Some(gid) => xen.domain_mut(gid).rx_queue.push(frame),
                            None => {
                                self.demux_misses += 1;
                                m.meter.count_event("demux_miss");
                            }
                        }
                    }
                    kernel.free_skb(m, skb)?;
                }
                cpu.set_reg(Reg::Eax, 0);
            }
            "dma_map_single" => {
                let c = m.cost.dma_map;
                m.meter.charge(c);
                let vaddr = cpu.arg(m, 0)? as u64;
                let t = m.translate(dom0, ExecMode::Guest, vaddr, false)?;
                cpu.set_reg(
                    Reg::Eax,
                    (t.entry.pfn * twin_machine::PAGE_SIZE + t.offset) as u32,
                );
            }
            "dma_map_page" => {
                // Returns the correct guest machine page address (paper
                // §5.3 and footnote 4).
                let c = m.cost.dma_map;
                m.meter.charge(c);
                let addr = cpu.arg(m, 0)?;
                cpu.set_reg(Reg::Eax, addr);
            }
            "dma_unmap_single" | "dma_unmap_page" => {
                let c = m.cost.dma_map;
                m.meter.charge(c);
                cpu.set_reg(Reg::Eax, 0);
            }
            "spin_trylock" => {
                // Operates on the shared lock word in dom0 memory
                // (paper §4.4 — synchronization just works because the
                // atomic variables are shared).
                let c = m.cost.spinlock;
                m.meter.charge(c);
                svm.charge_fast_path(m);
                let addr = cpu.arg(m, 0)? as u64;
                let v = m.read_u32(dom0, ExecMode::Guest, addr)?;
                if v == 0 {
                    m.write_u32(dom0, ExecMode::Guest, addr, 1)?;
                    cpu.set_reg(Reg::Eax, 1);
                } else {
                    cpu.set_reg(Reg::Eax, 0);
                }
            }
            "spin_unlock_irqrestore" => {
                let c = m.cost.spinlock;
                m.meter.charge(c);
                let addr = cpu.arg(m, 0)? as u64;
                if addr != 0 {
                    m.write_u32(dom0, ExecMode::Guest, addr, 0)?;
                }
                cpu.set_reg(Reg::Eax, 0);
            }
            "eth_type_trans" => {
                let c = m.cost.eth_type_trans;
                m.meter.charge(c);
                svm.charge_fast_path(m);
                let skb = SkBuff(cpu.arg(m, 0)? as u64);
                let data = skb.data(m, dom0)?;
                let hi = m.read_virt(dom0, ExecMode::Guest, data + 12, twin_isa::Width::Byte)?;
                let lo = m.read_virt(dom0, ExecMode::Guest, data + 13, twin_isa::Width::Byte)?;
                let proto = (hi << 8) | lo;
                skb.set_protocol(m, dom0, proto)?;
                cpu.set_reg(Reg::Eax, proto);
            }
            other => {
                return Err(Fault::UnknownExtern(other.to_string()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twin_net::{Frame, MacAddr};

    fn setup() -> (Machine, Dom0Kernel, Xen, Svm, HyperSupport) {
        let mut m = Machine::new();
        let dom0 = m.new_space();
        let mut kernel = Dom0Kernel::new(&mut m, dom0, 32).unwrap();
        kernel.reserve_hypervisor_pool(&mut m, 32).unwrap();
        let xen = Xen::new(dom0);
        let svm = Svm::new_hypervisor(&mut m, dom0, 0, (0, u64::MAX)).unwrap();
        (m, kernel, xen, svm, HyperSupport::new())
    }

    /// Calls a support routine with stack-passed args, like driver code.
    fn call(
        hs: &mut HyperSupport,
        name: &str,
        m: &mut Machine,
        kernel: &mut Dom0Kernel,
        xen: &mut Xen,
        svm: &mut Svm,
        args: &[u32],
    ) -> Result<u32, Fault> {
        // Build a stack frame in dom0 memory for arg reads.
        let stack = 0x3f00_0000;
        m.map_fresh(kernel.space, stack, 2).unwrap();
        let mut cpu = Cpu::new(kernel.space, ExecMode::Hypervisor);
        cpu.set_stack(stack + 2 * 4096);
        cpu.push_call_frame(m, args)?;
        match hs.handle_extern(name, m, &mut cpu, kernel, xen, svm) {
            Some(r) => r.map(|()| cpu.reg(twin_isa::Reg::Eax)),
            None => Err(Fault::UnknownExtern(name.to_string())),
        }
    }

    #[test]
    fn alloc_comes_from_reserved_pool() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup();
        let skb = call(
            &mut hs,
            "netdev_alloc_skb",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[0, 2048],
        )
        .unwrap();
        assert_ne!(skb, 0);
        let flags = SkBuff(skb as u64).pool_flags(&m, kernel.space).unwrap();
        assert_eq!(flags & 1, 1, "reserved-pool buffer");
        assert_eq!(kernel.hyper_pool.as_ref().unwrap().available(), 31);
        // Freeing routes back to the reserved pool, not dom0's.
        call(
            &mut hs,
            "dev_kfree_skb_any",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[skb],
        )
        .unwrap();
        assert_eq!(kernel.hyper_pool.as_ref().unwrap().available(), 32);
        assert_eq!(kernel.pool.available(), 32);
    }

    #[test]
    fn netif_rx_demuxes_by_mac() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup();
        let gspace = m.new_space();
        let gid = xen.add_guest(gspace, MacAddr::for_guest(5));
        // Build an skb holding a frame for guest 5.
        let skb = kernel
            .hyper_pool
            .as_mut()
            .unwrap()
            .alloc(&mut m, kernel.space)
            .unwrap();
        let f = Frame::data(MacAddr::for_guest(5), MacAddr::for_guest(9), 2, 7);
        skb.fill_from_frame(&mut m, kernel.space, &f).unwrap();
        call(
            &mut hs,
            "netif_rx",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[skb.0 as u32],
        )
        .unwrap();
        assert_eq!(xen.domain(gid).rx_queue.len(), 1);
        assert_eq!(xen.domain(gid).rx_queue[0].seq, 7);
        // skb returned to the pool.
        assert_eq!(kernel.hyper_pool.as_ref().unwrap().available(), 32);

        // Unknown MAC: dropped and counted.
        let skb = kernel
            .hyper_pool
            .as_mut()
            .unwrap()
            .alloc(&mut m, kernel.space)
            .unwrap();
        let f = Frame::data(MacAddr::for_guest(77), MacAddr::for_guest(9), 2, 8);
        skb.fill_from_frame(&mut m, kernel.space, &f).unwrap();
        call(
            &mut hs,
            "netif_rx",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[skb.0 as u32],
        )
        .unwrap();
        assert_eq!(hs.demux_misses, 1);
    }

    #[test]
    fn upcall_costs_include_switches_from_guest_context() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup();
        let gspace = m.new_space();
        let gid = xen.add_guest(gspace, MacAddr::for_guest(1));
        xen.switch_to(&mut m, gid);
        let before = m.meter.cycles(CostDomain::Xen);
        let switches_before = xen.switches;
        hs.set_upcall_count(9);
        assert!(hs.upcall_routines.contains("spin_trylock"));
        // spin_trylock now routes via upcall.
        let lock = 0x3e00_0000;
        m.map_fresh(kernel.space, lock, 1).unwrap();
        let r = call(
            &mut hs,
            "spin_trylock",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[lock as u32],
        )
        .unwrap();
        assert_eq!(r, 1, "lock acquired through the upcall");
        assert_eq!(hs.upcalls, 1);
        assert_eq!(xen.switches, switches_before + 2, "to dom0 and back");
        assert_eq!(xen.current, gid, "restored to the guest");
        let delta = m.meter.cycles(CostDomain::Xen) - before;
        assert!(
            delta >= 2 * m.cost.domain_switch + m.cost.upcall_overhead,
            "upcall cost {delta}"
        );
    }

    #[test]
    fn upcall_from_dom0_context_skips_switches() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup();
        hs.set_upcall_count(9);
        let before = xen.switches;
        let lock = 0x3e00_0000;
        m.map_fresh(kernel.space, lock, 1).unwrap();
        call(
            &mut hs,
            "spin_trylock",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[lock as u32],
        )
        .unwrap();
        assert_eq!(xen.switches, before, "already in dom0: no switches");
        assert_eq!(hs.upcalls, 1);
    }

    #[test]
    fn netif_rx_never_upcalls() {
        let (_m, _kernel, _xen, _svm, mut hs) = setup();
        hs.set_upcall_count(9);
        assert!(!hs.upcall_routines.contains("netif_rx"));
        assert_eq!(hs.upcall_routines.len(), 9);
    }

    #[test]
    fn long_tail_routines_route_via_upcall() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup();
        // `kmalloc` is not a fast-path routine: hypervisor has no native
        // implementation, so it must upcall.
        let r = call(
            &mut hs,
            "kmalloc",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[128],
        )
        .unwrap();
        assert_ne!(r, 0, "allocation served by dom0 through the upcall");
        assert_eq!(hs.upcalls, 1);
    }

    #[test]
    fn truly_unknown_externs_are_rejected() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup();
        let e = call(
            &mut hs,
            "no_such_fn",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[],
        )
        .unwrap_err();
        assert!(matches!(e, Fault::UnknownExtern(_)));
    }

    #[test]
    fn shared_lock_word_couples_both_instances() {
        // dom0 takes the lock through the kernel impl; the hypervisor
        // trylock must fail on the same word.
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup();
        let lock = 0x3e00_0000;
        m.map_fresh(kernel.space, lock, 1).unwrap();
        m.write_u32(kernel.space, ExecMode::Guest, lock, 1).unwrap();
        let r = call(
            &mut hs,
            "spin_trylock",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[lock as u32],
        )
        .unwrap();
        assert_eq!(r, 0, "hypervisor sees dom0's lock");
    }
}
