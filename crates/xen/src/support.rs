//! Hypervisor-side support routines (paper §4.3) and the upcall
//! mechanism (paper §4.2).
//!
//! The hypervisor implements only the ten fast-path routines of Table 1;
//! everything else the driver calls is forwarded to dom0 through a
//! synchronous upcall: save parameters, switch to the upcall stack,
//! (domain-switch to dom0 if running in a guest context), deliver a
//! synchronous virtual interrupt, run the dom0 routine, return via a
//! hypercall, switch back. For Figure 10, any subset of the fast-path
//! routines can be *forced* onto the upcall path.
//!
//! In **deferred mode** ([`crate::upcall::UpcallMode::Deferred`]) the
//! upcall stub consults [`twin_kernel::TABLE1_DEFER_POLICY`] instead of
//! switching immediately: `Deferred`-class calls are saved into the
//! request ring at [`crate::hyperdrv::UPCALL_RING_BASE`] and continue
//! with a locally computed provisional result; `Continuation`-class calls
//! enqueue themselves, suspend the burst, and [`HyperSupport::flush_upcalls`]
//! drains the whole ring in one switch-pair, posting every return value
//! back through the completion event channel.

use crate::domain::DomId;
use crate::hyperdrv::{
    UPCALL_RING_BASE, UPCALL_RING_SLOTS, UPCALL_RING_SLOT_BYTES, UPCALL_STACK_BASE,
    UPCALL_STACK_PAGES,
};
use crate::upcall::{UpcallEngine, UpcallMode, UPCALL_COMPLETION_PORT};
use crate::xen::{Softirq, Xen};
use std::collections::BTreeSet;
use twin_kernel::{DeferClass, Dom0Kernel, SkBuff, KNOWN_ROUTINES, TABLE1_FASTPATH};
use twin_machine::{CostDomain, Cpu, ExecMode, Fault, Machine, PAGE_SIZE};
use twin_svm::{Svm, CALL_XLAT_SYMBOL, SLOW_PATH_SYMBOL};
use twin_trace::{FlushCause, TraceEvent};

/// Event-channel port used for upcall requests.
pub const UPCALL_PORT: u32 = 31;

/// Hypervisor support state: which routines are forced to upcall, the
/// deferred-upcall engine, and counters.
#[derive(Debug, Default)]
pub struct HyperSupport {
    /// Fast-path routines forced onto the upcall path (Figure 10 sweep).
    pub upcall_routines: BTreeSet<String>,
    /// Upcalls executed in dom0 (synchronously or at a flush).
    pub upcalls: u64,
    /// Frames dropped because no guest matched the destination MAC.
    pub demux_misses: u64,
    /// The deferred-upcall engine (ring, completions, continuation ids).
    pub engine: UpcallEngine,
}

impl HyperSupport {
    /// Creates support state with every Table 1 routine implemented in
    /// the hypervisor (the paper's best configuration: "no upcalls were
    /// made").
    pub fn new() -> HyperSupport {
        HyperSupport::default()
    }

    /// Forces the first `n` fast-path routines (in Table 1 order,
    /// excluding `netif_rx`, which the paper always keeps native) onto
    /// the upcall path — the Figure 10 X axis.
    pub fn set_upcall_count(&mut self, n: usize) {
        self.upcall_routines = TABLE1_FASTPATH
            .iter()
            .filter(|r| **r != "netif_rx")
            .take(n)
            .map(|s| s.to_string())
            .collect();
    }

    /// Handles an extern call made by the *hypervisor* driver instance.
    /// Returns `None` if the name is not an SVM helper, a fast-path
    /// routine, or a known dom0 routine (i.e. truly unknown).
    ///
    /// Dispatch order matches the paper's loader resolution (§5.2):
    /// SVM helpers → hypervisor implementations → upcall stubs.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_extern(
        &mut self,
        name: &str,
        m: &mut Machine,
        cpu: &mut Cpu,
        kernel: &mut Dom0Kernel,
        xen: &mut Xen,
        svm: &mut Svm,
    ) -> Option<Result<(), Fault>> {
        match name {
            SLOW_PATH_SYMBOL => {
                let r = (|| {
                    let addr = cpu.arg(m, 0)? as u64;
                    svm.slow_path(m, addr)?;
                    Ok(())
                })();
                return Some(r);
            }
            CALL_XLAT_SYMBOL => {
                let r = (|| {
                    let t = cpu.arg(m, 0)? as u64;
                    let x = svm.translate_call(m, t)?;
                    cpu.set_reg(twin_isa::Reg::Eax, x as u32);
                    Ok(())
                })();
                return Some(r);
            }
            twin_rewriter::STACK_CHECK_SYMBOL => {
                let r = (|| {
                    let addr = cpu.arg(m, 0)? as u64;
                    let esp = cpu.reg(twin_isa::Reg::Esp) as u64;
                    // Accept accesses within one stack extent of esp.
                    let lo = esp.saturating_sub(4096 * 2);
                    let hi = esp + 4096 * 2;
                    if addr < lo || addr >= hi {
                        return Err(Fault::EnvFault(format!(
                            "stack check: access at {addr:#x} outside stack window"
                        )));
                    }
                    Ok(())
                })();
                return Some(r);
            }
            _ => {}
        }

        let is_fastpath = TABLE1_FASTPATH.contains(&name);
        let force_upcall = self.upcall_routines.contains(name);
        if is_fastpath && !force_upcall {
            // Deferred entries must be visible before a native routine
            // that reads the state they mutate (pool free lists, the
            // shared lock word) — flush first on a conflict.
            if self.engine.deferred() {
                if let Some((_, queued)) = twin_kernel::UPCALL_CONFLICTS
                    .iter()
                    .find(|(n, _)| *n == name)
                {
                    if self.engine.has_queued_any(queued) {
                        if let Err(e) = self.flush_upcalls(m, kernel, xen, FlushCause::Conflict) {
                            return Some(Err(e));
                        }
                    }
                }
            }
            kernel.trace.record(name);
            if m.trace.enabled() {
                m.trace_event(TraceEvent::KernelCall {
                    routine: name.to_string(),
                    phase: kernel.trace.phase.clone(),
                });
            }
            m.meter.push_domain(CostDomain::Xen);
            let r = self.native_impl(name, m, cpu, kernel, xen, svm);
            m.meter.pop_domain();
            return Some(r);
        }
        // Upcall stub: any routine dom0 implements (including forced
        // fast-path routines) is forwarded — synchronously, or via the
        // deferred ring per the routine's policy class.
        if KNOWN_ROUTINES.contains(&name) {
            return Some(match self.engine.mode {
                UpcallMode::Sync => self.upcall(name, m, cpu, kernel, xen),
                UpcallMode::Deferred => self.upcall_deferred(name, m, cpu, kernel, xen),
            });
        }
        None
    }

    /// The upcall path (paper §4.2).
    fn upcall(
        &mut self,
        name: &str,
        m: &mut Machine,
        cpu: &mut Cpu,
        kernel: &mut Dom0Kernel,
        xen: &mut Xen,
    ) -> Result<(), Fault> {
        self.upcalls += 1;
        m.meter.count_event("upcall");
        // Latency accounting keys on the monotonic virtual clock (not the
        // resettable per-domain totals), so samples spanning a
        // measurement-window reset stay well-defined.
        let cycles_before = m.meter.now();
        // Stub: save parameters, switch to the upcall stack.
        let c = m.cost.upcall_overhead;
        m.meter.charge_to(CostDomain::Xen, c);
        let back = xen.current;
        // Synchronous switch to dom0 if invoked from a guest context.
        xen.switch_to(m, DomId::DOM0);
        // Synchronous virtual interrupt to the dom0 upcall handler.
        xen.send_virq(m, DomId::DOM0, UPCALL_PORT);
        xen.domain_mut(DomId::DOM0).pending_virqs.pop();
        // The dom0 handler recovers parameters and invokes the support
        // routine; heap and registers are identical by construction, and
        // the stack parameters are read through the same cpu state.
        match kernel.handle_extern(name, m, cpu) {
            Some(r) => r?,
            None => return Err(Fault::UnknownExtern(name.to_string())),
        }
        // Return to the stub via hypercall, then back to the guest.
        xen.hypercall(m);
        xen.switch_to(m, back);
        self.engine
            .record_sync_latency(m.meter.now() - cycles_before);
        Ok(())
    }

    /// The deferred upcall stub: policy-directed queueing instead of an
    /// immediate switch-pair.
    fn upcall_deferred(
        &mut self,
        name: &str,
        m: &mut Machine,
        cpu: &mut Cpu,
        kernel: &mut Dom0Kernel,
        xen: &mut Xen,
    ) -> Result<(), Fault> {
        let (class, arity) = twin_kernel::defer_policy(name);
        match class {
            DeferClass::Sync => {
                // A synchronous upcall is itself a dom0 transition:
                // drain the ring first so queued entries (frees,
                // unlocks) execute before it in program order — dom0
                // must not observe the sync call ahead of older work.
                self.flush_upcalls(m, kernel, xen, FlushCause::SyncOrder)?;
                self.upcall(name, m, cpu, kernel, xen)
            }
            DeferClass::Deferred => {
                let args = read_args(m, cpu, arity)?;
                let provisional = self.local_result(name, m, kernel, &args)?;
                self.enqueue_upcall(name, args, m, kernel, xen)?;
                cpu.set_reg(twin_isa::Reg::Eax, provisional);
                Ok(())
            }
            DeferClass::Continuation => {
                let args = read_args(m, cpu, arity)?;
                let cont_id = self.enqueue_upcall(name, args, m, kernel, xen)?;
                // Suspend the burst: drain the ring FIFO (this call
                // last) in one switch-pair, then resume with the dom0
                // return value its completion carries.
                self.engine.stats.continuations += 1;
                m.meter.count_event("upcall_continuation");
                self.flush_upcalls(m, kernel, xen, FlushCause::Continuation)?;
                let done = self
                    .engine
                    .take_completion(cont_id)
                    .expect("flush posts the suspending call's completion");
                cpu.set_reg(twin_isa::Reg::Eax, done.ret);
                Ok(())
            }
        }
    }

    /// Provisional result for a `Deferred`-class routine, computed by the
    /// hypervisor without switching: DMA mapping is the same
    /// deterministic page translation the stlb performs (dom0's flush
    /// execution recomputes it and the completion carries the identical
    /// value); frees, unmaps and unlocks return 0 like their dom0
    /// implementations.
    fn local_result(
        &mut self,
        name: &str,
        m: &mut Machine,
        kernel: &Dom0Kernel,
        args: &[u32],
    ) -> Result<u32, Fault> {
        match name {
            "dma_map_single" => {
                let c = m.cost.dma_map;
                m.meter.charge_to(CostDomain::Xen, c);
                let vaddr = args.first().copied().unwrap_or(0) as u64;
                let t = m.translate(kernel.space, ExecMode::Guest, vaddr, false)?;
                Ok((t.entry.pfn * PAGE_SIZE + t.offset) as u32)
            }
            "dma_map_page" => {
                let c = m.cost.dma_map;
                m.meter.charge_to(CostDomain::Xen, c);
                Ok(args.first().copied().unwrap_or(0))
            }
            _ => Ok(0),
        }
    }

    /// Saves one upcall into the request ring: flushes first if the ring
    /// is full, charges the enqueue cost, writes the slot in hypervisor
    /// memory and schedules a flush kick past the high-water mark.
    /// Returns the continuation id.
    pub fn enqueue_upcall(
        &mut self,
        name: &str,
        args: Vec<u32>,
        m: &mut Machine,
        kernel: &mut Dom0Kernel,
        xen: &mut Xen,
    ) -> Result<u64, Fault> {
        if self.engine.is_full() {
            self.engine.stats.forced_flushes += 1;
            m.meter.count_event("upcall_forced_flush");
            self.flush_upcalls(m, kernel, xen, FlushCause::RingFull)?;
        }
        let c = m.cost.upcall_enqueue;
        m.meter.charge_to(CostDomain::Xen, c);
        m.meter.count_event("upcall_enqueue");
        let arg = |i: usize| args.get(i).copied().unwrap_or(0);
        let routine_id = KNOWN_ROUTINES
            .iter()
            .position(|r| *r == name)
            .unwrap_or(usize::MAX) as u32;
        let words = [
            routine_id,
            args.len() as u32,
            arg(0),
            arg(1),
            arg(2),
            arg(3),
            0, // cont id lo, patched below
            0, // cont id hi
        ];
        let cycles = m.meter.now();
        let cont_id = self.engine.enqueue(name, args, cycles);
        if m.trace.enabled() {
            m.trace_event(TraceEvent::UpcallEnqueue {
                routine: name.to_string(),
                cont_id,
            });
        }
        // Persist the slot: (routine id, arity, args[0..4], cont id).
        let entry = self.engine.stats.enqueued.wrapping_sub(1);
        let slot = UPCALL_RING_BASE + (entry % UPCALL_RING_SLOTS) * UPCALL_RING_SLOT_BYTES;
        for (i, w) in words.iter().enumerate() {
            let v = match i {
                6 => cont_id as u32,
                7 => (cont_id >> 32) as u32,
                _ => *w,
            };
            m.write_u32(kernel.space, ExecMode::Hypervisor, slot + 4 * i as u64, v)?;
        }
        if self.engine.past_high_water() {
            xen.raise_softirq(Softirq::UpcallFlush);
        }
        Ok(cont_id)
    }

    /// Drains the deferred-upcall ring in **one** switch-pair: switch to
    /// dom0, deliver the upcall event, rebuild each saved call frame on
    /// the upcall stack and run the routine, record its completion,
    /// return via hypercall and post a single batched completion event to
    /// the interrupted domain. No-op on an empty ring. Returns how many
    /// upcalls executed.
    ///
    /// # Errors
    ///
    /// Returns the first routine fault; the switch back to the
    /// interrupted context still happens, later completions for that
    /// flush are not posted (the driver will be aborted by its caller).
    pub fn flush_upcalls(
        &mut self,
        m: &mut Machine,
        kernel: &mut Dom0Kernel,
        xen: &mut Xen,
        cause: FlushCause,
    ) -> Result<usize, Fault> {
        if self.engine.depth() == 0 {
            return Ok(0);
        }
        // Records from earlier flushes were consumed by their waiters
        // already (or never had one) — keep the store bounded.
        self.engine.prune_stale_completions();
        self.engine.stats.flushes += 1;
        m.meter.count_event("upcall_flush");
        let c = m.cost.upcall_flush_overhead;
        m.meter.charge_to(CostDomain::Xen, c);
        let back = xen.current;
        xen.switch_to(m, DomId::DOM0);
        xen.send_virq(m, DomId::DOM0, UPCALL_PORT);
        xen.domain_mut(DomId::DOM0).pending_virqs.pop();
        let entries = self.engine.drain();
        let n = entries.len();
        if m.trace.enabled() {
            m.trace_event(TraceEvent::UpcallFlush {
                cause,
                drained: n as u32,
            });
        }
        let stack_top = UPCALL_STACK_BASE + UPCALL_STACK_PAGES * PAGE_SIZE;
        let mut first_err: Option<Fault> = None;
        for entry in &entries {
            if first_err.is_some() {
                break;
            }
            let c = m.cost.upcall_dispatch;
            m.meter.charge_to(CostDomain::Dom0, c);
            // Rebuild the saved call frame on the upcall stack and run
            // the routine in dom0.
            let mut cpu = Cpu::new(kernel.space, ExecMode::Hypervisor);
            cpu.set_stack(stack_top);
            let r = cpu.push_call_frame(m, &entry.args).and_then(|()| {
                match kernel.handle_extern(&entry.routine, m, &mut cpu) {
                    Some(r) => r.map(|()| cpu.reg(twin_isa::Reg::Eax)),
                    None => Err(Fault::UnknownExtern(entry.routine.clone())),
                }
            });
            match r {
                Ok(ret) => {
                    self.upcalls += 1;
                    m.meter.count_event("upcall_exec");
                    let c = m.cost.upcall_complete;
                    m.meter.charge_to(CostDomain::Xen, c);
                    self.engine.complete(entry, ret, m.meter.now());
                    if m.trace.enabled() {
                        m.trace_event(TraceEvent::UpcallCompletion {
                            routine: entry.routine.clone(),
                            cont_id: entry.cont_id,
                        });
                    }
                }
                Err(e) => first_err = Some(e),
            }
        }
        xen.hypercall(m);
        xen.switch_to(m, back);
        // One batched completion event for the whole flush; the resumed
        // driver instance acknowledges it immediately (like the sync
        // stub's upcall event above).
        xen.send_virq(m, back, UPCALL_COMPLETION_PORT);
        xen.domain_mut(back).drain_virqs(UPCALL_COMPLETION_PORT);
        match first_err {
            Some(e) => Err(e),
            None => Ok(n),
        }
    }

    /// Hypervisor-native implementations of the Table 1 routines.
    /// These use the stlb explicitly for driver-data access (modeled by
    /// charging the fast-path lookup) and the dom0-reserved buffer pool.
    fn native_impl(
        &mut self,
        name: &str,
        m: &mut Machine,
        cpu: &mut Cpu,
        kernel: &mut Dom0Kernel,
        xen: &mut Xen,
        svm: &mut Svm,
    ) -> Result<(), Fault> {
        use twin_isa::Reg;
        let dom0 = kernel.space;
        match name {
            "netdev_alloc_skb" => {
                let c = m.cost.skb_alloc;
                m.meter.charge(c);
                svm.charge_fast_path(m);
                let skb = kernel.hyper_pool.as_mut().and_then(|p| p.alloc(m, dom0));
                cpu.set_reg(Reg::Eax, skb.map(|s| s.0 as u32).unwrap_or(0));
            }
            "dev_kfree_skb_any" => {
                let c = m.cost.skb_alloc / 2;
                m.meter.charge(c);
                let skb = SkBuff(cpu.arg(m, 0)? as u64);
                if skb.0 != 0 {
                    kernel.free_skb(m, skb)?;
                }
                cpu.set_reg(Reg::Eax, 0);
            }
            "netif_rx" => {
                // The hypervisor's receive path: demultiplex on the
                // destination MAC and queue to the guest (paper §5.3).
                let demux_cycles = 220;
                m.meter.charge(demux_cycles);
                svm.charge_fast_path(m);
                let skb = SkBuff(cpu.arg(m, 0)? as u64);
                if skb.0 != 0 {
                    if let Some(frame) = skb.parse_frame(m, dom0)? {
                        match xen.guest_by_mac(frame.dst) {
                            Some(gid) => {
                                if !xen.domain_mut(gid).queue_rx(frame) {
                                    m.meter.count_event("rx_queue_drop");
                                    if m.trace.enabled() {
                                        m.trace_event(TraceEvent::QueueCapDrop { guest: gid.0 });
                                    }
                                }
                            }
                            None => {
                                self.demux_misses += 1;
                                m.meter.count_event("demux_miss");
                            }
                        }
                    }
                    kernel.free_skb(m, skb)?;
                }
                cpu.set_reg(Reg::Eax, 0);
            }
            "dma_map_single" => {
                let c = m.cost.dma_map;
                m.meter.charge(c);
                let vaddr = cpu.arg(m, 0)? as u64;
                let t = m.translate(dom0, ExecMode::Guest, vaddr, false)?;
                cpu.set_reg(
                    Reg::Eax,
                    (t.entry.pfn * twin_machine::PAGE_SIZE + t.offset) as u32,
                );
            }
            "dma_map_page" => {
                // Returns the correct guest machine page address (paper
                // §5.3 and footnote 4).
                let c = m.cost.dma_map;
                m.meter.charge(c);
                let addr = cpu.arg(m, 0)?;
                cpu.set_reg(Reg::Eax, addr);
            }
            "dma_unmap_single" | "dma_unmap_page" => {
                let c = m.cost.dma_map;
                m.meter.charge(c);
                cpu.set_reg(Reg::Eax, 0);
            }
            "spin_trylock" => {
                // Operates on the shared lock word in dom0 memory
                // (paper §4.4 — synchronization just works because the
                // atomic variables are shared).
                let c = m.cost.spinlock;
                m.meter.charge(c);
                svm.charge_fast_path(m);
                let addr = cpu.arg(m, 0)? as u64;
                let v = m.read_u32(dom0, ExecMode::Guest, addr)?;
                if v == 0 {
                    m.write_u32(dom0, ExecMode::Guest, addr, 1)?;
                    cpu.set_reg(Reg::Eax, 1);
                } else {
                    cpu.set_reg(Reg::Eax, 0);
                }
            }
            "spin_unlock_irqrestore" => {
                let c = m.cost.spinlock;
                m.meter.charge(c);
                let addr = cpu.arg(m, 0)? as u64;
                if addr != 0 {
                    m.write_u32(dom0, ExecMode::Guest, addr, 0)?;
                }
                cpu.set_reg(Reg::Eax, 0);
            }
            "eth_type_trans" => {
                let c = m.cost.eth_type_trans;
                m.meter.charge(c);
                svm.charge_fast_path(m);
                let skb = SkBuff(cpu.arg(m, 0)? as u64);
                let data = skb.data(m, dom0)?;
                let hi = m.read_virt(dom0, ExecMode::Guest, data + 12, twin_isa::Width::Byte)?;
                let lo = m.read_virt(dom0, ExecMode::Guest, data + 13, twin_isa::Width::Byte)?;
                let proto = (hi << 8) | lo;
                skb.set_protocol(m, dom0, proto)?;
                cpu.set_reg(Reg::Eax, proto);
            }
            other => {
                return Err(Fault::UnknownExtern(other.to_string()));
            }
        }
        Ok(())
    }
}

/// Reads the first `arity` cdecl stack arguments of the current frame
/// (the "save parameters" half of the deferred stub).
fn read_args(m: &Machine, cpu: &Cpu, arity: usize) -> Result<Vec<u32>, Fault> {
    (0..arity as u32).map(|i| cpu.arg(m, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twin_net::{Frame, MacAddr};

    fn setup() -> (Machine, Dom0Kernel, Xen, Svm, HyperSupport) {
        let mut m = Machine::new();
        let dom0 = m.new_space();
        let mut kernel = Dom0Kernel::new(&mut m, dom0, 32).unwrap();
        kernel.reserve_hypervisor_pool(&mut m, 32).unwrap();
        let xen = Xen::new(dom0);
        let svm = Svm::new_hypervisor(&mut m, dom0, 0, (0, u64::MAX)).unwrap();
        (m, kernel, xen, svm, HyperSupport::new())
    }

    /// Calls a support routine with stack-passed args, like driver code.
    fn call(
        hs: &mut HyperSupport,
        name: &str,
        m: &mut Machine,
        kernel: &mut Dom0Kernel,
        xen: &mut Xen,
        svm: &mut Svm,
        args: &[u32],
    ) -> Result<u32, Fault> {
        // Build a stack frame in dom0 memory for arg reads.
        let stack = 0x3f00_0000;
        m.map_fresh(kernel.space, stack, 2).unwrap();
        let mut cpu = Cpu::new(kernel.space, ExecMode::Hypervisor);
        cpu.set_stack(stack + 2 * 4096);
        cpu.push_call_frame(m, args)?;
        match hs.handle_extern(name, m, &mut cpu, kernel, xen, svm) {
            Some(r) => r.map(|()| cpu.reg(twin_isa::Reg::Eax)),
            None => Err(Fault::UnknownExtern(name.to_string())),
        }
    }

    #[test]
    fn alloc_comes_from_reserved_pool() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup();
        let skb = call(
            &mut hs,
            "netdev_alloc_skb",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[0, 2048],
        )
        .unwrap();
        assert_ne!(skb, 0);
        let flags = SkBuff(skb as u64).pool_flags(&m, kernel.space).unwrap();
        assert_eq!(flags & 1, 1, "reserved-pool buffer");
        assert_eq!(kernel.hyper_pool.as_ref().unwrap().available(), 31);
        // Freeing routes back to the reserved pool, not dom0's.
        call(
            &mut hs,
            "dev_kfree_skb_any",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[skb],
        )
        .unwrap();
        assert_eq!(kernel.hyper_pool.as_ref().unwrap().available(), 32);
        assert_eq!(kernel.pool.available(), 32);
    }

    #[test]
    fn netif_rx_demuxes_by_mac() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup();
        let gspace = m.new_space();
        let gid = xen.add_guest(gspace, MacAddr::for_guest(5));
        // Build an skb holding a frame for guest 5.
        let skb = kernel
            .hyper_pool
            .as_mut()
            .unwrap()
            .alloc(&mut m, kernel.space)
            .unwrap();
        let f = Frame::data(MacAddr::for_guest(5), MacAddr::for_guest(9), 2, 7);
        skb.fill_from_frame(&mut m, kernel.space, &f).unwrap();
        call(
            &mut hs,
            "netif_rx",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[skb.0 as u32],
        )
        .unwrap();
        assert_eq!(xen.domain(gid).rx_queue.len(), 1);
        assert_eq!(xen.domain(gid).rx_queue[0].seq, 7);
        // skb returned to the pool.
        assert_eq!(kernel.hyper_pool.as_ref().unwrap().available(), 32);

        // Unknown MAC: dropped and counted.
        let skb = kernel
            .hyper_pool
            .as_mut()
            .unwrap()
            .alloc(&mut m, kernel.space)
            .unwrap();
        let f = Frame::data(MacAddr::for_guest(77), MacAddr::for_guest(9), 2, 8);
        skb.fill_from_frame(&mut m, kernel.space, &f).unwrap();
        call(
            &mut hs,
            "netif_rx",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[skb.0 as u32],
        )
        .unwrap();
        assert_eq!(hs.demux_misses, 1);
    }

    #[test]
    fn upcall_costs_include_switches_from_guest_context() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup();
        let gspace = m.new_space();
        let gid = xen.add_guest(gspace, MacAddr::for_guest(1));
        xen.switch_to(&mut m, gid);
        let before = m.meter.cycles(CostDomain::Xen);
        let switches_before = xen.switches;
        hs.set_upcall_count(9);
        assert!(hs.upcall_routines.contains("spin_trylock"));
        // spin_trylock now routes via upcall.
        let lock = 0x3e00_0000;
        m.map_fresh(kernel.space, lock, 1).unwrap();
        let r = call(
            &mut hs,
            "spin_trylock",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[lock as u32],
        )
        .unwrap();
        assert_eq!(r, 1, "lock acquired through the upcall");
        assert_eq!(hs.upcalls, 1);
        assert_eq!(xen.switches, switches_before + 2, "to dom0 and back");
        assert_eq!(xen.current, gid, "restored to the guest");
        let delta = m.meter.cycles(CostDomain::Xen) - before;
        assert!(
            delta >= 2 * m.cost.domain_switch + m.cost.upcall_overhead,
            "upcall cost {delta}"
        );
    }

    #[test]
    fn upcall_from_dom0_context_skips_switches() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup();
        hs.set_upcall_count(9);
        let before = xen.switches;
        let lock = 0x3e00_0000;
        m.map_fresh(kernel.space, lock, 1).unwrap();
        call(
            &mut hs,
            "spin_trylock",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[lock as u32],
        )
        .unwrap();
        assert_eq!(xen.switches, before, "already in dom0: no switches");
        assert_eq!(hs.upcalls, 1);
    }

    #[test]
    fn netif_rx_never_upcalls() {
        let (_m, _kernel, _xen, _svm, mut hs) = setup();
        hs.set_upcall_count(9);
        assert!(!hs.upcall_routines.contains("netif_rx"));
        assert_eq!(hs.upcall_routines.len(), 9);
    }

    #[test]
    fn long_tail_routines_route_via_upcall() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup();
        // `kmalloc` is not a fast-path routine: hypervisor has no native
        // implementation, so it must upcall.
        let r = call(
            &mut hs,
            "kmalloc",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[128],
        )
        .unwrap();
        assert_ne!(r, 0, "allocation served by dom0 through the upcall");
        assert_eq!(hs.upcalls, 1);
    }

    #[test]
    fn truly_unknown_externs_are_rejected() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup();
        let e = call(
            &mut hs,
            "no_such_fn",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[],
        )
        .unwrap_err();
        assert!(matches!(e, Fault::UnknownExtern(_)));
    }

    /// A `setup()` world with the deferred engine armed (upcall stack and
    /// request ring mapped, as the hypervisor loader does).
    fn setup_deferred() -> (Machine, Dom0Kernel, Xen, Svm, HyperSupport) {
        let (mut m, kernel, xen, svm, mut hs) = setup();
        m.map_hyper_fresh(UPCALL_STACK_BASE, UPCALL_STACK_PAGES)
            .unwrap();
        m.map_hyper_fresh(UPCALL_RING_BASE, crate::hyperdrv::UPCALL_RING_PAGES)
            .unwrap();
        hs.engine.set_mode(UpcallMode::Deferred);
        (m, kernel, xen, svm, hs)
    }

    #[test]
    fn deferred_free_queues_until_flush() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup_deferred();
        hs.upcall_routines.insert("dev_kfree_skb_any".into());
        let gspace = m.new_space();
        let gid = xen.add_guest(gspace, MacAddr::for_guest(1));
        xen.switch_to(&mut m, gid);
        let switches_before = xen.switches;
        let virqs_before = xen.virqs_sent;
        let skb = kernel.pool.alloc(&mut m, kernel.space).unwrap();
        let before = kernel.pool.available();
        call(
            &mut hs,
            "dev_kfree_skb_any",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[skb.0 as u32],
        )
        .unwrap();
        // Queued, not executed: no switches, pool unchanged.
        assert_eq!(xen.switches, switches_before, "no switch on enqueue");
        assert_eq!(kernel.pool.available(), before);
        assert_eq!(hs.engine.depth(), 1);
        assert_eq!(m.meter.event("upcall_enqueue"), 1);
        // The flush executes it in one switch-pair and posts completion.
        let n = hs
            .flush_upcalls(&mut m, &mut kernel, &mut xen, FlushCause::BurstEnd)
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(xen.switches, switches_before + 2, "one pair per flush");
        assert_eq!(kernel.pool.available(), before + 1, "free ran in dom0");
        assert_eq!(hs.upcalls, 1);
        assert_eq!(m.meter.event("upcall_flush"), 1);
        assert_eq!(m.meter.event("upcall_exec"), 1);
        // The batched completion event went back through the event
        // channel (request to dom0 + completion to the guest) and the
        // resumed instance acknowledged it — nothing left pending.
        assert_eq!(xen.virqs_sent, virqs_before + 2);
        assert!(xen.domain(gid).pending_virqs.is_empty());
    }

    #[test]
    fn deferred_dma_map_returns_translation_immediately() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup_deferred();
        hs.upcall_routines.insert("dma_map_single".into());
        let vaddr = 0x3d00_0000u64;
        m.map_fresh(kernel.space, vaddr, 1).unwrap();
        let switches_before = xen.switches;
        let r = call(
            &mut hs,
            "dma_map_single",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[vaddr as u32, 2048],
        )
        .unwrap();
        assert_eq!(xen.switches, switches_before, "provisional, no switch");
        let t = m
            .translate(kernel.space, ExecMode::Guest, vaddr, false)
            .unwrap();
        let machine_addr = (t.entry.pfn * PAGE_SIZE + t.offset) as u32;
        assert_eq!(r, machine_addr, "hypervisor-computed translation");
        // dom0's flush execution recomputes the identical value.
        hs.flush_upcalls(&mut m, &mut kernel, &mut xen, FlushCause::BurstEnd)
            .unwrap();
        let done = hs.engine.take_completion(1).unwrap();
        assert_eq!(done.ret, machine_addr, "completion matches provisional");
    }

    #[test]
    fn continuation_alloc_drains_ring_fifo_and_resumes() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup_deferred();
        hs.set_upcall_count(2); // netdev_alloc_skb + dev_kfree_skb_any
        let gspace = m.new_space();
        let gid = xen.add_guest(gspace, MacAddr::for_guest(1));
        xen.switch_to(&mut m, gid);
        let switches_before = xen.switches;
        // Queue a free, then suspend on an allocation: both must run in
        // the same single switch-pair, free first (FIFO).
        let skb = kernel.pool.alloc(&mut m, kernel.space).unwrap();
        let before = kernel.pool.available();
        call(
            &mut hs,
            "dev_kfree_skb_any",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[skb.0 as u32],
        )
        .unwrap();
        let r = call(
            &mut hs,
            "netdev_alloc_skb",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            // A real (nonzero) netdev: dom0's dispatch treats a null
            // netdev as the sw_init capability probe and allocates
            // nothing.
            &[1, 2048],
        )
        .unwrap();
        assert_ne!(r, 0, "resumed with dom0's return value");
        assert_eq!(xen.switches, switches_before + 2, "one pair for both");
        assert_eq!(m.meter.event("upcall_continuation"), 1);
        assert_eq!(m.meter.event("upcall_flush"), 1);
        // Free ran before the alloc: net pool change is -1 + 1 = 0.
        assert_eq!(kernel.pool.available(), before);
        assert_eq!(hs.engine.depth(), 0);
        assert_eq!(xen.current, gid, "restored to the guest");
    }

    #[test]
    fn conflict_barrier_flushes_before_native_trylock() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup_deferred();
        // Manually force only the unlock — set_upcall_count can never
        // produce this split, but the policy is user-settable.
        hs.upcall_routines.insert("spin_unlock_irqrestore".into());
        let lock = 0x3e00_0000u64;
        m.map_fresh(kernel.space, lock, 1).unwrap();
        m.write_u32(kernel.space, ExecMode::Guest, lock, 1).unwrap();
        call(
            &mut hs,
            "spin_unlock_irqrestore",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[lock as u32, 0],
        )
        .unwrap();
        assert_eq!(hs.engine.depth(), 1, "unlock queued");
        assert_eq!(
            m.read_u32(kernel.space, ExecMode::Guest, lock).unwrap(),
            1,
            "lock word untouched until flush"
        );
        // Native trylock must observe the queued unlock: the barrier
        // flushes first, so the lock is acquired, not bounced.
        let r = call(
            &mut hs,
            "spin_trylock",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[lock as u32],
        )
        .unwrap();
        assert_eq!(r, 1, "native trylock sees the flushed unlock");
        assert_eq!(m.meter.event("upcall_flush"), 1);
        assert_eq!(hs.engine.depth(), 0);
    }

    #[test]
    fn sync_class_upcall_drains_queued_work_first() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup_deferred();
        hs.upcall_routines.insert("dev_kfree_skb_any".into());
        // Queue a free, then make a long-tail (Sync-class) upcall: dom0
        // must see the free before it — program order is preserved even
        // for routines outside the policy table.
        let skb = kernel.pool.alloc(&mut m, kernel.space).unwrap();
        let before = kernel.pool.available();
        call(
            &mut hs,
            "dev_kfree_skb_any",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[skb.0 as u32],
        )
        .unwrap();
        assert_eq!(hs.engine.depth(), 1);
        let r = call(
            &mut hs,
            "kmalloc",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[64],
        )
        .unwrap();
        assert_ne!(r, 0, "sync upcall served by dom0");
        assert_eq!(hs.engine.depth(), 0, "ring drained before the sync call");
        assert_eq!(kernel.pool.available(), before + 1, "free ran first");
        assert_eq!(m.meter.event("upcall_flush"), 1);
        assert_eq!(m.meter.event("upcall"), 1, "the kmalloc itself was sync");
        assert_eq!(hs.upcalls, 2, "one flushed entry + one sync upcall");
    }

    #[test]
    fn full_ring_forces_flush_and_high_water_raises_softirq() {
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup_deferred();
        hs.engine.set_capacity(4);
        hs.upcall_routines.insert("dma_unmap_single".into());
        for i in 0..6u32 {
            call(
                &mut hs,
                "dma_unmap_single",
                &mut m,
                &mut kernel,
                &mut xen,
                &mut svm,
                &[0x1000 * i, 64],
            )
            .unwrap();
        }
        assert_eq!(hs.engine.stats.forced_flushes, 1, "5th enqueue flushed");
        assert_eq!(hs.engine.stats.flushes, 1);
        assert_eq!(hs.engine.depth(), 2);
        assert!(
            xen.softirqs.contains(&crate::xen::Softirq::UpcallFlush),
            "high-water kick scheduled"
        );
        assert_eq!(m.meter.event("upcall_forced_flush"), 1);
        // Completions for the flushed four are all posted, FIFO ids.
        assert_eq!(hs.engine.pending_completions(), 4);
        for id in 1..=4u64 {
            assert!(hs.engine.take_completion(id).is_some(), "cont {id}");
        }
    }

    #[test]
    fn shared_lock_word_couples_both_instances() {
        // dom0 takes the lock through the kernel impl; the hypervisor
        // trylock must fail on the same word.
        let (mut m, mut kernel, mut xen, mut svm, mut hs) = setup();
        let lock = 0x3e00_0000;
        m.map_fresh(kernel.space, lock, 1).unwrap();
        m.write_u32(kernel.space, ExecMode::Guest, lock, 1).unwrap();
        let r = call(
            &mut hs,
            "spin_trylock",
            &mut m,
            &mut kernel,
            &mut xen,
            &mut svm,
            &[lock as u32],
        )
        .unwrap();
        assert_eq!(r, 0, "hypervisor sees dom0's lock");
    }
}
