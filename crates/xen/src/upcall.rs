//! The deferred-upcall engine: a per-device-driver ring of queued dom0
//! upcalls with completions and continuations.
//!
//! The paper's upcall path (§4.2) pays two domain switches per *call* —
//! Figure 10 shows transmit throughput collapsing from 3902 to 359 Mb/s
//! as fast-path routines are forced onto it. With the burst pipeline in
//! place, most forced upcalls do not need their result immediately:
//! frees, unmaps and unlocks are fire-and-forget, and DMA mapping is a
//! deterministic translation the hypervisor can compute locally. This
//! engine queues such calls as `(routine, saved parameters, continuation
//! id)` records and batch-executes the whole ring in **one** switch-pair
//! at the next natural dom0 scheduling point (end of a burst pass, a
//! queue-full forced flush, or a timeout kick), amortizing the two
//! switches per *flush* instead of per *call* — the same restructuring
//! that batching applied to interrupts, and the transition-batching idea
//! of software-only passthrough (arXiv:1508.06367).
//!
//! Routines whose results are consumed inline and only dom0 can produce
//! (buffer allocation, stack delivery) instead **suspend the burst via a
//! continuation**: the ring drains FIFO with the suspending call last,
//! and the caller resumes with that routine's dom0 return value, which is
//! posted back — like every completion — through the event channel. The
//! per-routine choice lives in [`twin_kernel::TABLE1_DEFER_POLICY`].
//!
//! The engine is pure bookkeeping: costs, domain switches and the actual
//! dom0 execution are driven by [`crate::support::HyperSupport`], which
//! owns an engine instance.

use twin_kernel::UPCALL_MAX_ARGS;

/// Event-channel port on which batched completions are posted back to the
/// interrupted context ([`crate::support::UPCALL_PORT`] carries the
/// requests).
pub const UPCALL_COMPLETION_PORT: u32 = 32;

/// Whether upcalls execute synchronously (the paper's §4.2 path, exact)
/// or through the deferred ring.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum UpcallMode {
    /// Every upcall switches to dom0 and back, per call (default; the
    /// PR 2 path, cycle-exact).
    #[default]
    Sync,
    /// Upcalls are queued per their [`twin_kernel::DeferClass`] policy
    /// and batch-executed at flush points.
    Deferred,
}

/// One queued upcall: the routine, its saved stack parameters and the
/// continuation id its completion will carry.
#[derive(Clone, Debug)]
pub struct QueuedUpcall {
    /// Support routine name.
    pub routine: String,
    /// Saved stack arguments (cdecl order).
    pub args: Vec<u32>,
    /// Continuation id; completions are matched on it.
    pub cont_id: u64,
    /// `CycleMeter::total_cycles()` at enqueue time (latency accounting).
    pub enqueued_cycles: u64,
}

/// One completion: the routine's dom0 return value, posted back through
/// the event channel after a flush executed the queued call.
#[derive(Clone, Debug)]
pub struct Completion {
    /// Continuation id of the request this completes.
    pub cont_id: u64,
    /// Routine that ran.
    pub routine: String,
    /// dom0 return value.
    pub ret: u32,
}

/// Engine counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct UpcallStats {
    /// Upcalls enqueued into the ring.
    pub enqueued: u64,
    /// Flushes performed (each is one switch-pair).
    pub flushes: u64,
    /// Flushes forced by the ring filling up.
    pub forced_flushes: u64,
    /// Burst suspensions (continuation-class calls).
    pub continuations: u64,
    /// Completions posted.
    pub completions: u64,
    /// Deepest the ring has been.
    pub max_depth: usize,
}

/// The deferred-upcall ring plus completion store. Requests are FIFO;
/// completions stay available until consumed with
/// [`UpcallEngine::take_completion`].
#[derive(Debug)]
pub struct UpcallEngine {
    /// Execution mode.
    pub mode: UpcallMode,
    /// Counters.
    pub stats: UpcallStats,
    capacity: usize,
    queue: Vec<QueuedUpcall>,
    completions: Vec<Completion>,
    next_cont_id: u64,
    /// Deadline-driven flush configuration: when set, the first enqueue
    /// into an empty ring arms a virtual timer `deadline_cycles` ahead,
    /// so an *idle* system's queued upcalls still complete in bounded
    /// time (the burst-pass flush points only fire while traffic flows).
    deadline_cycles: Option<u64>,
    /// Virtual cycle at which the armed deadline fires; cleared by the
    /// drain of any flush (whoever flushes first disarms it).
    flush_due_at: Option<u64>,
    /// Cycles-to-completion per upcall (completion minus enqueue), for
    /// the latency-percentile measurement. Synchronous upcalls also
    /// record their (short) latency here.
    latency: Vec<u64>,
}

impl Default for UpcallEngine {
    fn default() -> UpcallEngine {
        UpcallEngine::new()
    }
}

impl UpcallEngine {
    /// Default ring capacity (entries); bounded by the mapped ring pages
    /// ([`crate::hyperdrv::UPCALL_RING_SLOTS`]).
    pub const DEFAULT_CAPACITY: usize = 128;

    /// Creates a synchronous-mode engine with the default capacity.
    pub fn new() -> UpcallEngine {
        UpcallEngine {
            mode: UpcallMode::Sync,
            stats: UpcallStats::default(),
            capacity: UpcallEngine::DEFAULT_CAPACITY,
            queue: Vec::new(),
            completions: Vec::new(),
            next_cont_id: 1,
            deadline_cycles: None,
            flush_due_at: None,
            latency: Vec::new(),
        }
    }

    /// Configures the deadline-driven flush: `Some(cycles)` arms a
    /// virtual timer at the first enqueue into an empty ring; `None`
    /// (the default) disables it.
    pub fn set_flush_deadline(&mut self, cycles: Option<u64>) {
        self.deadline_cycles = cycles;
    }

    /// The configured flush deadline in cycles, if any.
    pub fn flush_deadline(&self) -> Option<u64> {
        self.deadline_cycles
    }

    /// The armed deadline's absolute fire time, if a deadline is pending.
    pub fn flush_due_at(&self) -> Option<u64> {
        self.flush_due_at
    }

    /// True when the armed flush deadline has elapsed at virtual time
    /// `now` (and queued work is still pending).
    pub fn flush_due(&self, now: u64) -> bool {
        matches!(self.flush_due_at, Some(t) if now >= t && !self.queue.is_empty())
    }

    /// Selects the execution mode.
    pub fn set_mode(&mut self, mode: UpcallMode) {
        self.mode = mode;
    }

    /// True when the deferred path is active.
    pub fn deferred(&self) -> bool {
        self.mode == UpcallMode::Deferred
    }

    /// Sets the ring capacity (≥ 1; enqueueing at capacity forces a
    /// flush first).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued (unflushed) upcalls.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// True when the next enqueue would exceed capacity.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// True when the ring has crossed the softirq high-water mark
    /// (three quarters full): a flush kick should be scheduled so queued
    /// calls do not wait arbitrarily long for the next natural point.
    pub fn past_high_water(&self) -> bool {
        self.queue.len() * 4 >= self.capacity * 3
    }

    /// Appends a request and returns its continuation id. The caller
    /// (support layer) is responsible for flushing first when
    /// [`UpcallEngine::is_full`].
    pub fn enqueue(&mut self, routine: &str, args: Vec<u32>, now_cycles: u64) -> u64 {
        debug_assert!(args.len() <= UPCALL_MAX_ARGS);
        if self.queue.is_empty() {
            // First enqueue into an empty ring: arm the flush deadline so
            // queued work completes in bounded time even if no burst-pass
            // flush point ever arrives (idle system).
            self.flush_due_at = self.deadline_cycles.map(|d| now_cycles + d);
        }
        let cont_id = self.next_cont_id;
        self.next_cont_id += 1;
        self.queue.push(QueuedUpcall {
            routine: routine.to_string(),
            args,
            cont_id,
            enqueued_cycles: now_cycles,
        });
        self.stats.enqueued += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.queue.len());
        cont_id
    }

    /// Drains the ring FIFO for a flush; disarms any pending flush
    /// deadline (the flush satisfies it, whoever triggered it).
    pub fn drain(&mut self) -> Vec<QueuedUpcall> {
        self.flush_due_at = None;
        std::mem::take(&mut self.queue)
    }

    /// True when any queued routine is in `names` (the conflict check for
    /// native fast-path execution).
    pub fn has_queued_any(&self, names: &[&str]) -> bool {
        self.queue
            .iter()
            .any(|q| names.contains(&q.routine.as_str()))
    }

    /// Records the completion of a flushed entry and its
    /// cycles-to-completion sample.
    pub fn complete(&mut self, entry: &QueuedUpcall, ret: u32, now_cycles: u64) {
        self.completions.push(Completion {
            cont_id: entry.cont_id,
            routine: entry.routine.clone(),
            ret,
        });
        self.stats.completions += 1;
        self.latency
            .push(now_cycles.saturating_sub(entry.enqueued_cycles));
    }

    /// Consumes the completion for a continuation id, if posted.
    pub fn take_completion(&mut self, cont_id: u64) -> Option<Completion> {
        let i = self.completions.iter().position(|c| c.cont_id == cont_id)?;
        Some(self.completions.remove(i))
    }

    /// Drops completion records left over from earlier flushes. Waiters
    /// (continuation suspensions, the batched-alloc glue) always consume
    /// their completions right after the flush that posts them, so
    /// anything still unclaimed when the next flush begins has no waiter
    /// — pruning keeps the store bounded by one flush's entries instead
    /// of growing for the system's lifetime.
    pub fn prune_stale_completions(&mut self) {
        self.completions.clear();
    }

    /// Completions posted but not yet consumed.
    pub fn pending_completions(&self) -> usize {
        self.completions.len()
    }

    /// Records a synchronous upcall's latency sample.
    pub fn record_sync_latency(&mut self, cycles: u64) {
        self.latency.push(cycles);
    }

    /// Cycles-to-completion samples collected so far.
    pub fn latency_samples(&self) -> &[u64] {
        &self.latency
    }

    /// Clears the latency samples (measurement windows reset alongside
    /// the cycle meter).
    pub fn clear_latency(&mut self) {
        self.latency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_assigns_monotonic_continuation_ids() {
        let mut e = UpcallEngine::new();
        let a = e.enqueue("dev_kfree_skb_any", vec![1], 10);
        let b = e.enqueue("dev_kfree_skb_any", vec![2], 20);
        assert!(b > a);
        assert_eq!(e.depth(), 2);
        assert_eq!(e.stats.enqueued, 2);
        let drained = e.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].cont_id, a, "FIFO");
        assert_eq!(e.depth(), 0);
    }

    #[test]
    fn completions_match_by_continuation_id() {
        let mut e = UpcallEngine::new();
        let a = e.enqueue("dma_unmap_single", vec![0x100, 64], 5);
        let b = e.enqueue("dma_unmap_single", vec![0x200, 64], 6);
        for q in e.drain() {
            let ret = q.args[0];
            e.complete(&q, ret, 1000);
        }
        assert_eq!(e.take_completion(b).unwrap().ret, 0x200);
        assert_eq!(e.take_completion(a).unwrap().ret, 0x100);
        assert!(e.take_completion(a).is_none(), "consumed");
        assert_eq!(e.latency_samples(), &[995, 994]);
    }

    #[test]
    fn capacity_and_high_water() {
        let mut e = UpcallEngine::new();
        e.set_capacity(4);
        assert!(!e.is_full());
        for i in 0..3 {
            e.enqueue("dev_kfree_skb_any", vec![i], 0);
        }
        assert!(e.past_high_water(), "3/4 full");
        assert!(!e.is_full());
        e.enqueue("dev_kfree_skb_any", vec![3], 0);
        assert!(e.is_full());
        assert_eq!(e.stats.max_depth, 4);
    }

    #[test]
    fn stale_completions_prune_at_the_next_flush() {
        let mut e = UpcallEngine::new();
        let a = e.enqueue("dev_kfree_skb_any", vec![1], 0);
        for q in e.drain() {
            e.complete(&q, 0, 100);
        }
        assert_eq!(e.pending_completions(), 1);
        // Next flush begins: unclaimed records have no waiter.
        e.prune_stale_completions();
        assert_eq!(e.pending_completions(), 0);
        assert!(e.take_completion(a).is_none());
        // Stats and latency history survive pruning.
        assert_eq!(e.stats.completions, 1);
        assert_eq!(e.latency_samples().len(), 1);
    }

    #[test]
    fn flush_deadline_arms_on_first_enqueue_and_disarms_on_drain() {
        let mut e = UpcallEngine::new();
        assert!(e.flush_due_at().is_none(), "no deadline configured");
        e.enqueue("dev_kfree_skb_any", vec![1], 100);
        e.drain();
        e.set_flush_deadline(Some(5_000));
        e.enqueue("dev_kfree_skb_any", vec![1], 1_000);
        assert_eq!(e.flush_due_at(), Some(6_000), "armed at first enqueue");
        // A second enqueue does not re-arm: the deadline bounds the
        // *oldest* queued entry.
        e.enqueue("dev_kfree_skb_any", vec![2], 4_000);
        assert_eq!(e.flush_due_at(), Some(6_000));
        assert!(!e.flush_due(5_999));
        assert!(e.flush_due(6_000));
        e.drain();
        assert!(e.flush_due_at().is_none(), "drain disarms");
        assert!(!e.flush_due(10_000));
        // Next first-enqueue re-arms relative to its own time.
        e.enqueue("dev_kfree_skb_any", vec![3], 20_000);
        assert_eq!(e.flush_due_at(), Some(25_000));
    }

    #[test]
    fn conflict_check_sees_queued_routines() {
        let mut e = UpcallEngine::new();
        e.enqueue("spin_unlock_irqrestore", vec![0x40, 0], 0);
        assert!(e.has_queued_any(&["spin_unlock_irqrestore"]));
        assert!(!e.has_queued_any(&["dev_kfree_skb_any"]));
        e.drain();
        assert!(!e.has_queued_any(&["spin_unlock_irqrestore"]));
    }
}
