//! Map-once grant cache for the zero-copy datapath.
//!
//! The baseline I/O channel pays a `grant_map`/`grant_unmap` hypercall
//! pair (or a grant-copy) per packet. In zero-copy mode the guest grants
//! a pool of RX/TX buffer pages **once**; the twin driver maps each page
//! on first touch and keeps the mapping alive, recycling it through an
//! index ring. [`GrantCache`] is that mapping table: keyed by
//! `(domain, pool page)`, LRU-evicted at capacity, with hit/miss/eviction
//! statistics so the cost model (and the sweeps) can see the per-packet
//! map cost amortize to zero once the pool is warm.
//!
//! The cache is pure bookkeeping — the caller charges cycles
//! (`grant_cache_hit` on a hit, `grant_map` + `pin_page` on a miss,
//! `grant_unmap` on an eviction) so every cost stays attributed at the
//! site that incurs it.

use std::collections::BTreeMap;

/// Hit/miss/eviction counters of a [`GrantCache`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GrantCacheStats {
    /// Lookups that found a live mapping (no hypercall).
    pub hits: u64,
    /// Lookups that established a new mapping (one `grant_map`, paid
    /// once per pool page).
    pub misses: u64,
    /// Mappings torn down to make room at capacity (one `grant_unmap`).
    pub evictions: u64,
    /// Mappings revoked by [`GrantCache::revoke_domain`] (the
    /// fault-isolation / quarantine path).
    pub revoked: u64,
}

/// Outcome of one [`GrantCache::access`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GrantAccess {
    /// The page was already mapped: charge `grant_cache_hit` only.
    Hit,
    /// The page was mapped now (charge `grant_map` + `pin_page`); if a
    /// victim was evicted to make room, it must be unmapped (charge
    /// `grant_unmap`).
    Miss {
        /// `(domain, page)` evicted to make room, if the cache was full.
        evicted: Option<(u32, u64)>,
    },
}

/// An LRU table of live grant mappings, keyed `(domain, pool page)`.
#[derive(Debug, Clone)]
pub struct GrantCache {
    capacity: usize,
    /// page key → last-touch stamp (monotonic access counter).
    entries: BTreeMap<(u32, u64), u64>,
    tick: u64,
    /// Counters.
    pub stats: GrantCacheStats,
}

impl GrantCache {
    /// Creates an empty cache holding at most `capacity` mappings.
    pub fn new(capacity: usize) -> GrantCache {
        GrantCache {
            capacity: capacity.max(1),
            entries: BTreeMap::new(),
            tick: 0,
            stats: GrantCacheStats::default(),
        }
    }

    /// Live mappings currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no mapping is live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `(dom, page)` is currently mapped (no LRU touch, no
    /// stats — observability only).
    pub fn contains(&self, dom: u32, page: u64) -> bool {
        self.entries.contains_key(&(dom, page))
    }

    /// Looks up `(dom, page)`, establishing the mapping on a miss and
    /// evicting the least-recently-used entry when at capacity. The
    /// caller charges cycles per the returned [`GrantAccess`].
    pub fn access(&mut self, dom: u32, page: u64) -> GrantAccess {
        self.tick += 1;
        if let Some(stamp) = self.entries.get_mut(&(dom, page)) {
            *stamp = self.tick;
            self.stats.hits += 1;
            return GrantAccess::Hit;
        }
        self.stats.misses += 1;
        let mut evicted = None;
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, stamp)| **stamp)
                .map(|(k, _)| *k)
                .expect("cache at capacity is non-empty");
            self.entries.remove(&victim);
            self.stats.evictions += 1;
            evicted = Some(victim);
        }
        self.entries.insert((dom, page), self.tick);
        GrantAccess::Miss { evicted }
    }

    /// Tears down every mapping a domain owns and returns how many were
    /// revoked — the quarantine seam: when fault isolation suspects a
    /// guest (or the driver serving it), its cached grants must go so no
    /// stale mapping outlives the trust decision. Each revoked mapping
    /// owes one `grant_unmap`, charged by the caller.
    pub fn revoke_domain(&mut self, dom: u32) -> usize {
        let victims: Vec<(u32, u64)> = self
            .entries
            .keys()
            .filter(|(d, _)| *d == dom)
            .copied()
            .collect();
        for k in &victims {
            self.entries.remove(k);
        }
        self.stats.revoked += victims.len() as u64;
        victims.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = GrantCache::new(8);
        assert_eq!(c.access(1, 100), GrantAccess::Miss { evicted: None });
        assert_eq!(c.access(1, 100), GrantAccess::Hit);
        assert_eq!(c.access(1, 100), GrantAccess::Hit);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn keys_are_per_domain() {
        let mut c = GrantCache::new(8);
        c.access(1, 100);
        assert_eq!(
            c.access(2, 100),
            GrantAccess::Miss { evicted: None },
            "same page, different domain: a distinct grant"
        );
        assert!(c.contains(1, 100) && c.contains(2, 100));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut c = GrantCache::new(2);
        c.access(1, 10);
        c.access(1, 20);
        c.access(1, 10); // 10 is now most-recent
        let r = c.access(1, 30);
        assert_eq!(
            r,
            GrantAccess::Miss {
                evicted: Some((1, 20))
            },
            "the least-recently-used entry goes"
        );
        assert_eq!(c.stats.evictions, 1);
        assert!(c.contains(1, 10) && c.contains(1, 30) && !c.contains(1, 20));
        // The evicted page faults back in on next touch.
        assert!(matches!(c.access(1, 20), GrantAccess::Miss { .. }));
    }

    #[test]
    fn revoke_domain_clears_only_that_domain() {
        let mut c = GrantCache::new(16);
        c.access(1, 10);
        c.access(1, 20);
        c.access(2, 10);
        assert_eq!(c.revoke_domain(1), 2);
        assert_eq!(c.stats.revoked, 2);
        assert!(!c.contains(1, 10) && !c.contains(1, 20));
        assert!(c.contains(2, 10), "other domains' grants survive");
        assert_eq!(c.revoke_domain(1), 0, "idempotent once empty");
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut c = GrantCache::new(0);
        c.access(1, 10);
        let r = c.access(1, 20);
        assert_eq!(
            r,
            GrantAccess::Miss {
                evicted: Some((1, 10))
            }
        );
        assert_eq!(c.len(), 1);
    }
}
