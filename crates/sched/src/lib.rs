//! # twin-sched — a vCPU run/sleep model on the virtual clock
//!
//! TwinDrivers' performance argument rests on keeping the hypervisor
//! driver's working set hot: the cost model charges domain-switch
//! cache-refill taxes, but placement is only *cache-local* if the NIC
//! whose softirq services a guest's flows runs on the same physical CPU
//! the guest's vCPU occupies. This crate models the missing half: a
//! deterministic guest scheduler on the same virtual cycle counter as
//! everything else.
//!
//! * Each guest gets one vCPU with a periodic run/sleep schedule whose
//!   transitions are armed as [`TimerWheel`] virtual timers — the same
//!   wheel type the dom0 kernel uses, so expiry is cycle-accurate and
//!   O(due).
//! * A run queue per physical CPU answers "is anything hot on this
//!   CPU?" for poll-budget weighting.
//! * A static CPU ↔ NIC-softirq topology map (default `dev % num_cpus`,
//!   overridable per device) tells placement which NIC is *local* to a
//!   guest's vCPU.
//!
//! The model is deliberately open-loop: schedules are fixed duty cycles,
//! not load-driven, so every experiment is reproducible and the system
//! under test cannot perturb its own schedule. Guests without a vCPU
//! registered are treated as always running — the scheduler is strictly
//! opt-in and absent by default.

use std::collections::BTreeMap;

use twin_kernel::{Timer, TimerWheel};

/// Build-time configuration for the scheduler model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedOptions {
    /// Number of physical CPUs (run queues). NIC softirqs default to
    /// CPU `dev % num_cpus`.
    pub num_cpus: u32,
    /// After this many wakeups a vCPU is moved to the next CPU
    /// (`(cpu + 1) % num_cpus`), modelling the hypervisor scheduler
    /// rebalancing a guest. `0` pins every vCPU for the whole run.
    pub migrate_period: u32,
    /// Minimum virtual cycles between flow migrations for one guest —
    /// the hysteresis bound the affinity shard policy honours so a
    /// ping-ponging scheduler cannot thrash placements.
    pub affinity_hysteresis: u64,
}

impl Default for SchedOptions {
    fn default() -> SchedOptions {
        SchedOptions {
            num_cpus: 4,
            migrate_period: 0,
            // ~ 6-7 jiffies: long enough that one rebalance settles
            // before the next migration is allowed.
            affinity_hysteresis: 200_000,
        }
    }
}

/// One guest's modelled vCPU.
#[derive(Clone, Debug)]
struct Vcpu {
    cpu: u32,
    running: bool,
    /// Length of one run interval in cycles (0 = never runs).
    run_cycles: u64,
    /// Length of one sleep interval in cycles (0 = never sleeps).
    sleep_cycles: u64,
    /// When the current run/sleep interval began.
    state_since: u64,
    /// Completed run-interval cycles (current interval excluded).
    run_accum: u64,
    /// Run intervals begun (== wakeups observed).
    wakes: u64,
    /// Sleep intervals begun.
    sleeps: u64,
}

/// One scheduler state change, reported by [`VcpuSched::advance`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    pub guest: u32,
    /// Virtual cycle the transition took effect (the armed expiry, not
    /// the possibly-later cycle `advance` was called at).
    pub at: u64,
    /// `true` when the vCPU just woke, `false` when it went to sleep.
    pub now_running: bool,
    /// Set when this wakeup also moved the vCPU to a new physical CPU
    /// (`migrate_period` elapsed).
    pub migrated_to: Option<u32>,
}

/// Point-in-time view of one vCPU, for metrics export.
#[derive(Copy, Clone, Debug)]
pub struct VcpuStats {
    pub cpu: u32,
    pub running: bool,
    /// Total cycles spent running up to the query instant.
    pub run_cycles: u64,
    pub wakes: u64,
    pub sleeps: u64,
}

/// The scheduler model: vCPUs, their transition timers, per-CPU run
/// queues and the NIC-softirq topology map.
#[derive(Clone, Debug)]
pub struct VcpuSched {
    opts: SchedOptions,
    vcpus: BTreeMap<u32, Vcpu>,
    /// Run/sleep transitions, armed as virtual timers. `data` carries
    /// the guest id; `handler` is unused (this wheel never dispatches
    /// into ISA code).
    timers: TimerWheel,
    /// Guests currently running, per physical CPU.
    runq: Vec<Vec<u32>>,
    /// Per-device softirq CPU overrides; absent devices use
    /// `dev % num_cpus`.
    nic_cpu_override: BTreeMap<u32, u32>,
}

impl VcpuSched {
    pub fn new(opts: SchedOptions) -> VcpuSched {
        let cpus = opts.num_cpus.max(1) as usize;
        VcpuSched {
            opts,
            vcpus: BTreeMap::new(),
            timers: TimerWheel::new(),
            runq: vec![Vec::new(); cpus],
            nic_cpu_override: BTreeMap::new(),
        }
    }

    pub fn options(&self) -> &SchedOptions {
        &self.opts
    }

    /// Registers a vCPU for `guest` on `cpu` with a periodic
    /// `run_cycles`-on / `sleep_cycles`-off schedule starting (running)
    /// at `now`. A zero `sleep_cycles` means the vCPU never sleeps; a
    /// zero `run_cycles` (with non-zero sleep) means it never runs.
    /// Either degenerate schedule arms no timer.
    pub fn add_vcpu(&mut self, guest: u32, cpu: u32, run_cycles: u64, sleep_cycles: u64, now: u64) {
        let cpu = cpu % self.opts.num_cpus.max(1);
        let running = sleep_cycles == 0 || run_cycles > 0;
        let vcpu = Vcpu {
            cpu,
            running,
            run_cycles,
            sleep_cycles,
            state_since: now,
            run_accum: 0,
            wakes: u64::from(running),
            sleeps: u64::from(!running),
        };
        if running {
            self.runq[cpu as usize].push(guest);
        }
        if run_cycles > 0 && sleep_cycles > 0 {
            self.timers.arm(Timer {
                handler: 0,
                expires_at: now + if running { run_cycles } else { sleep_cycles },
                data: u64::from(guest),
            });
        }
        self.vcpus.insert(guest, vcpu);
    }

    /// Expires every transition due at `now` and applies it, keeping
    /// the schedule phase-locked to the armed expiry (a late `advance`
    /// never skews subsequent intervals). Returns the transitions in
    /// expiry order.
    pub fn advance(&mut self, now: u64) -> Vec<Transition> {
        let mut out = Vec::new();
        loop {
            let due = self.timers.expire(now);
            if due.is_empty() {
                return out;
            }
            for t in due {
                let guest = t.data as u32;
                let Some(v) = self.vcpus.get_mut(&guest) else {
                    continue;
                };
                let mut migrated_to = None;
                if v.running {
                    // Run interval over: account it and go to sleep.
                    v.run_accum += t.expires_at.saturating_sub(v.state_since);
                    v.running = false;
                    v.sleeps += 1;
                    self.runq[v.cpu as usize].retain(|&g| g != guest);
                } else {
                    v.running = true;
                    v.wakes += 1;
                    if self.opts.migrate_period > 0
                        && v.wakes % u64::from(self.opts.migrate_period) == 0
                    {
                        v.cpu = (v.cpu + 1) % self.opts.num_cpus.max(1);
                        migrated_to = Some(v.cpu);
                    }
                    self.runq[v.cpu as usize].push(guest);
                }
                v.state_since = t.expires_at;
                let next = if v.running {
                    v.run_cycles
                } else {
                    v.sleep_cycles
                };
                self.timers.arm(Timer {
                    handler: 0,
                    expires_at: t.expires_at + next,
                    data: u64::from(guest),
                });
                out.push(Transition {
                    guest,
                    at: t.expires_at,
                    now_running: v.running,
                    migrated_to,
                });
            }
        }
    }

    /// Whether `guest`'s vCPU is currently on a run queue. Guests with
    /// no registered vCPU are always running — the model is opt-in.
    pub fn is_running(&self, guest: u32) -> bool {
        self.vcpus.get(&guest).map_or(true, |v| v.running)
    }

    /// The physical CPU `guest`'s vCPU currently occupies.
    pub fn cpu_of(&self, guest: u32) -> Option<u32> {
        self.vcpus.get(&guest).map(|v| v.cpu)
    }

    /// The physical CPU that runs device `dev`'s softirq (the static
    /// topology map; default `dev % num_cpus`).
    pub fn nic_cpu(&self, dev: u32) -> u32 {
        self.nic_cpu_override
            .get(&dev)
            .copied()
            .unwrap_or(dev % self.opts.num_cpus.max(1))
    }

    /// Overrides the softirq CPU for one device.
    pub fn set_nic_cpu(&mut self, dev: u32, cpu: u32) {
        self.nic_cpu_override
            .insert(dev, cpu % self.opts.num_cpus.max(1));
    }

    /// When the (sleeping) guest next wakes; `None` when it is running
    /// or has no armed transition.
    pub fn next_wakeup(&self, guest: u32) -> Option<u64> {
        if self.is_running(guest) {
            return None;
        }
        self.timers
            .iter()
            .filter(|t| t.data == u64::from(guest))
            .map(|t| t.expires_at)
            .min()
    }

    /// Earliest armed transition across every vCPU — joined into the
    /// system's `next_virtual_event` so idle stepping lands exactly on
    /// scheduler edges.
    pub fn next_event(&self) -> Option<u64> {
        self.timers.next_due()
    }

    /// True when some vCPU on `cpu` is running.
    pub fn cpu_has_running(&self, cpu: u32) -> bool {
        self.runq.get(cpu as usize).is_some_and(|q| !q.is_empty())
    }

    /// True when any CPU hosts a registered vCPU (used to decide
    /// whether an empty run queue means "idle CPU" or "no model").
    pub fn cpu_has_vcpus(&self, cpu: u32) -> bool {
        self.vcpus.values().any(|v| v.cpu == cpu)
    }

    /// Guest ids with a registered vCPU.
    pub fn guests(&self) -> impl Iterator<Item = u32> + '_ {
        self.vcpus.keys().copied()
    }

    /// Metrics snapshot for one vCPU at virtual cycle `now`.
    pub fn stats(&self, guest: u32, now: u64) -> Option<VcpuStats> {
        self.vcpus.get(&guest).map(|v| VcpuStats {
            cpu: v.cpu,
            running: v.running,
            run_cycles: v.run_accum
                + if v.running {
                    now.saturating_sub(v.state_since)
                } else {
                    0
                },
            wakes: v.wakes,
            sleeps: v.sleeps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(run: u64, sleep: u64) -> VcpuSched {
        let mut s = VcpuSched::new(SchedOptions::default());
        s.add_vcpu(7, 1, run, sleep, 0);
        s
    }

    #[test]
    fn duty_cycle_alternates_phase_locked() {
        let mut s = sched(10_000, 30_000);
        assert!(s.is_running(7));
        assert_eq!(s.next_event(), Some(10_000));
        // Advance far past several transitions in one late call: the
        // schedule stays locked to the armed expiries.
        let ts = s.advance(85_000);
        let edges: Vec<(u64, bool)> = ts.iter().map(|t| (t.at, t.now_running)).collect();
        assert_eq!(
            edges,
            vec![
                (10_000, false),
                (40_000, true),
                (50_000, false),
                (80_000, true)
            ]
        );
        assert!(s.is_running(7));
        let st = s.stats(7, 85_000).unwrap();
        assert_eq!(st.run_cycles, 10_000 + 10_000 + 5_000);
        assert_eq!(st.wakes, 3);
        assert_eq!(st.sleeps, 2);
    }

    #[test]
    fn run_queue_tracks_state_and_unknown_guests_run() {
        let mut s = sched(10_000, 10_000);
        assert!(s.cpu_has_running(1));
        assert!(!s.cpu_has_running(0));
        s.advance(10_000);
        assert!(!s.cpu_has_running(1));
        assert_eq!(s.next_wakeup(7), Some(20_000));
        assert!(s.is_running(99)); // no vCPU registered
        assert_eq!(s.cpu_of(99), None);
    }

    #[test]
    fn migrate_period_rotates_cpu_on_wakeup() {
        let mut s = VcpuSched::new(SchedOptions {
            migrate_period: 2,
            ..SchedOptions::default()
        });
        s.add_vcpu(3, 0, 1_000, 1_000, 0);
        // wakes: initial=1; wake at 2k -> wakes=2 -> migrate to cpu 1.
        let ts = s.advance(2_000);
        let wake = ts.iter().find(|t| t.now_running).unwrap();
        assert_eq!(wake.migrated_to, Some(1));
        assert_eq!(s.cpu_of(3), Some(1));
        assert!(s.cpu_has_running(1));
    }

    #[test]
    fn topology_defaults_and_overrides() {
        let mut s = VcpuSched::new(SchedOptions::default());
        assert_eq!(s.nic_cpu(5), 1);
        s.set_nic_cpu(5, 3);
        assert_eq!(s.nic_cpu(5), 3);
    }

    #[test]
    fn degenerate_schedules_arm_no_timer() {
        let mut s = VcpuSched::new(SchedOptions::default());
        s.add_vcpu(1, 0, 5_000, 0, 0); // never sleeps
        s.add_vcpu(2, 0, 0, 5_000, 0); // never runs
        assert!(s.is_running(1));
        assert!(!s.is_running(2));
        assert_eq!(s.next_event(), None);
        assert!(s.advance(1_000_000).is_empty());
    }
}
