//! The deferred-upcall engine, end to end: mode equivalence, completion
//! ordering, queue-overflow forced flushes, latency percentiles and the
//! headline amortization (two switches per *flush* instead of per
//! *call*).

use twindrivers::measure::upcall_latency;
use twindrivers::{throughput, Config, System, SystemOptions, UpcallMode, TESTBED_NICS};

fn build(mode: UpcallMode, upcalls: usize) -> System {
    let opts = SystemOptions {
        upcall_count: upcalls,
        upcall_mode: mode,
        ..SystemOptions::default()
    };
    System::build_with(Config::TwinDrivers, &opts).expect("build")
}

#[test]
fn sync_is_the_default_and_deferred_idles_without_forced_upcalls() {
    // With no routines forced onto the upcall path the engine never
    // engages: a deferred-mode system is cycle-for-cycle identical to
    // the default sync build.
    let mut sync = build(UpcallMode::Sync, 0);
    let bs = sync.measure_tx(40).expect("sync measure");
    let mut defer = build(UpcallMode::Deferred, 0);
    let bd = defer.measure_tx(40).expect("deferred measure");
    assert_eq!(bs.per_domain, bd.per_domain, "cycle-exact with engine off");
    assert_eq!(defer.machine.meter.event("upcall_flush"), 0);
    assert_eq!(defer.machine.meter.event("upcall_enqueue"), 0);
    let hs = defer.world.hyper.as_ref().unwrap();
    assert_eq!(hs.engine.stats.enqueued, 0);
    // And the default options really are sync mode.
    assert_eq!(SystemOptions::default().upcall_mode, UpcallMode::Sync);
}

#[test]
fn deferred_traffic_is_equivalent_to_sync_at_full_forcing() {
    // All nine forceable routines on the upcall path: the deferred
    // engine must move exactly the same traffic as the synchronous path
    // — same wire frames, same guest deliveries, same pool state.
    let mut sync = build(UpcallMode::Sync, 9);
    let mut defer = build(UpcallMode::Deferred, 9);
    for sys in [&mut sync, &mut defer] {
        for burst in [1usize, 8, 32, 5] {
            assert_eq!(sys.transmit_burst(burst).unwrap(), burst);
        }
        for _ in 0..12 {
            sys.receive_one().unwrap();
        }
    }
    assert_eq!(sync.take_wire_frames(), defer.take_wire_frames());
    assert_eq!(sync.delivered_rx(), defer.delivered_rx());
    let gs = sync.guest.unwrap();
    let gd = defer.guest.unwrap();
    assert_eq!(
        sync.world.xen.as_ref().unwrap().domain(gs).rx_delivered,
        defer.world.xen.as_ref().unwrap().domain(gd).rx_delivered,
    );
    assert_eq!(
        sync.world.kernel.pool.available(),
        defer.world.kernel.pool.available(),
        "every deferred free executed"
    );
    assert_eq!(
        sync.world.kernel.hyper_pool.as_ref().unwrap().available(),
        defer.world.kernel.hyper_pool.as_ref().unwrap().available(),
    );
    // The deferred run actually deferred: flushes happened, and the ring
    // is empty at the end of every pass.
    let hs = defer.world.hyper.as_ref().unwrap();
    assert!(hs.engine.stats.flushes > 0);
    assert_eq!(hs.engine.depth(), 0);
}

#[test]
fn deferred_amortizes_switches_per_flush_not_per_call() {
    // Acceptance: at 4+ forced upcalls and burst 32, the deferred
    // engine sustains at least 3x the synchronous throughput.
    let mut sync = build(UpcallMode::Sync, 4);
    let ts = sync.measure_tx_burst(32, 64).expect("sync sweep");
    let mbps_sync = throughput(ts.breakdown.total(), TESTBED_NICS).mbps;
    let mut defer = build(UpcallMode::Deferred, 4);
    let td = defer.measure_tx_burst(32, 64).expect("deferred sweep");
    let mbps_defer = throughput(td.breakdown.total(), TESTBED_NICS).mbps;
    assert!(
        mbps_defer >= 3.0 * mbps_sync,
        "deferred {mbps_defer:.0} Mb/s vs sync {mbps_sync:.0} Mb/s (needs >= 3x)"
    );
    // The mechanism behind the number: switches collapse from two per
    // upcall to two per flush.
    let sync_switches = sync.machine.meter.event("domain_switch");
    let defer_switches = defer.machine.meter.event("domain_switch");
    assert!(
        defer_switches * 4 < sync_switches,
        "switches {defer_switches} vs {sync_switches}"
    );
    assert!(defer.machine.meter.event("upcall_flush") > 0);
}

#[test]
fn completions_of_the_same_routine_stay_fifo() {
    let mut sys = build(UpcallMode::Deferred, 9);
    // Drive a burst so the driver's own frees/unmaps queue and flush.
    assert_eq!(sys.transmit_burst(16).unwrap(), 16);
    assert_eq!(sys.transmit_burst(16).unwrap(), 16);
    let hs = sys.world.hyper.as_ref().unwrap();
    assert!(hs.engine.stats.completions > 0);
    // Enqueue several calls of one routine directly and flush once:
    // completions must come back in enqueue order (FIFO), matched by
    // monotonically increasing continuation ids.
    let (ids, completions) = {
        let twindrivers::system::World {
            kernel, xen, hyper, ..
        } = &mut sys.world;
        let hs = hyper.as_mut().unwrap();
        let xen = xen.as_mut().unwrap();
        let ids: Vec<u64> = (0..5u32)
            .map(|i| {
                hs.enqueue_upcall(
                    "dma_unmap_single",
                    vec![0x1000 + i, 64],
                    &mut sys.machine,
                    kernel,
                    xen,
                )
                .unwrap()
            })
            .collect();
        hs.flush_upcalls(
            &mut sys.machine,
            kernel,
            xen,
            twin_trace::FlushCause::BurstEnd,
        )
        .unwrap();
        let completions: Vec<_> = ids
            .iter()
            .map(|id| hs.engine.take_completion(*id).unwrap())
            .collect();
        (ids, completions)
    };
    assert!(ids.windows(2).all(|w| w[0] < w[1]), "monotonic cont ids");
    for (i, c) in completions.iter().enumerate() {
        assert_eq!(c.routine, "dma_unmap_single");
        assert_eq!(c.cont_id, ids[i], "completion order matches enqueue");
    }
}

#[test]
fn queue_overflow_forces_a_flush_and_loses_nothing() {
    let opts = SystemOptions {
        upcall_count: 9,
        upcall_mode: UpcallMode::Deferred,
        upcall_queue_capacity: 8,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).expect("build");
    // A burst of 32 queues far more than 8 deferred calls (frees, maps,
    // unmaps, unlock), so the tiny ring must force intermediate flushes
    // — and still deliver every frame.
    assert_eq!(sys.transmit_burst(32).unwrap(), 32);
    assert_eq!(sys.take_wire_frames().len(), 32);
    let hs = sys.world.hyper.as_ref().unwrap();
    assert!(
        hs.engine.stats.forced_flushes > 0,
        "capacity 8 must overflow on a 32-burst"
    );
    assert!(
        hs.engine.stats.max_depth <= 8,
        "ring never exceeds capacity"
    );
    assert_eq!(hs.engine.depth(), 0, "end-of-pass flush drains the rest");
    assert_eq!(
        hs.engine.stats.completions, hs.engine.stats.enqueued,
        "every queued upcall completed"
    );
}

#[test]
fn deferral_keeps_tail_latency_bounded_and_measured() {
    // Sync latency: every upcall completes within its own switch-pair.
    let mut sync = build(UpcallMode::Sync, 4);
    sync.measure_tx_burst(32, 64).expect("sync");
    let ls = upcall_latency(&sync);
    assert!(ls.samples > 0);
    let m = &sync.machine;
    assert!(
        ls.p50 >= 2 * m.cost.domain_switch,
        "sync upcalls pay their switches ({} cyc)",
        ls.p50
    );
    // Deferred: completion waits for the flush, so p99 grows — but must
    // stay bounded by roughly one burst pass of work, not diverge.
    let mut defer = build(UpcallMode::Deferred, 4);
    defer.measure_tx_burst(32, 64).expect("deferred");
    let ld = upcall_latency(&defer);
    assert!(ld.samples > 0);
    assert!(ld.p50 <= ld.p99 && ld.p99 <= ld.max);
    assert!(
        ld.p99 > ls.p99,
        "deferral trades completion latency ({} vs {}) for throughput",
        ld.p99,
        ls.p99
    );
    let pass_budget = 32 * 25_000;
    assert!(
        ld.p99 < pass_budget,
        "deferred p99 {} must stay under one pass of work {}",
        ld.p99,
        pass_budget
    );
}

#[test]
fn polled_rx_flushes_deferred_upcalls() {
    let mut sys = build(UpcallMode::Deferred, 9);
    // Fill descriptors without the interrupt path, then poll: the reap
    // queues unmaps/frees/allocs and the polled pass must flush them.
    let frames: Vec<_> = (0..8)
        .map(|i| twin_net::Frame {
            dst: twin_net::MacAddr::for_guest(1),
            src: twindrivers::peer_mac(),
            ethertype: twin_net::EtherType::Ipv4,
            payload_len: twin_net::MTU,
            flow: 3,
            seq: i,
        })
        .collect();
    assert_eq!(
        sys.world.nics[0].deliver_batch(&mut sys.machine.phys, &frames),
        8
    );
    assert_eq!(sys.poll_rx_batch().unwrap(), 8);
    assert_eq!(sys.delivered_rx(), 8);
    let hs = sys.world.hyper.as_ref().unwrap();
    assert_eq!(hs.engine.depth(), 0, "polled pass drained the ring");
    assert!(hs.engine.stats.flushes > 0);
}
