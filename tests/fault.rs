//! Fault isolation and live recovery, end to end (paper §4.5).
//!
//! The paper's safety story stops at "the hypervisor survives": SVM
//! rejects illegal accesses, the execution watchdog reclaims runaway
//! drivers (§4.5.2), and the faulted driver is aborted. These tests
//! pin down both that endpoint and what this codebase builds on top of
//! it — an abort that *leaks nothing* (grants revoked with balanced
//! unmaps, the deferred-upcall ring drained and its flush deadline
//! disarmed, NAPI poll spans closed, skb pools conserved) and, with
//! [`SystemOptions::fault_recovery`], per-device quarantine plus a
//! live reset that resumes traffic with zero cross-NIC blast radius.
//!
//! Fault injection is the device-conditional one-shot hook from
//! [`fault_injected_source`]: arm it for a device, and exactly one
//! driver invocation on behalf of that device executes the fault body.

use twin_net::{EtherType, Frame, MacAddr, MTU};
use twindrivers::kernel::e1000;
use twindrivers::measure::{fault_injected_source, measure_fault_recovery, FaultClass};
use twindrivers::{peer_mac, Config, ShardPolicy, System, SystemError, SystemOptions, UpcallMode};

/// Injects a payload right after a label of the stock driver source —
/// the free-form sibling of [`fault_injected_source`] for faults the
/// class enum does not model (e.g. a cross-domain store).
fn sabotage(marker: &str, payload: &str) -> String {
    e1000::source().replace(marker, &format!("{marker}\n{payload}"))
}

/// A flow id that [`ShardPolicy::FlowHash`] maps to `dev` (mirror of
/// the hypervisor's multiplicative hash).
fn flow_for(dev: u32, nics: u32) -> u32 {
    (0u32..)
        .map(|i| 0x7000 + i)
        .find(|f| (f.wrapping_mul(2_654_435_761) >> 16) % nics == dev)
        .expect("some flow hashes to every device")
}

/// `burst` in-order frames on `dev`'s flow, continuing from `*seq`.
fn frames_for(dev: u32, nics: u32, burst: usize, seq: &mut u64) -> Vec<Frame> {
    (0..burst)
        .map(|_| {
            let f = Frame {
                dst: MacAddr::for_guest(1),
                src: peer_mac(),
                ethertype: EtherType::Ipv4,
                payload_len: MTU,
                flow: flow_for(dev, nics),
                seq: *seq,
            };
            *seq += 1;
            f
        })
        .collect()
}

fn abort_reason(r: Result<usize, SystemError>) -> String {
    match r {
        Err(SystemError::DriverAborted(reason)) => reason,
        other => panic!("expected driver abort, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// The §4.5 endpoint, promoted from `examples/fault_injection.rs`: SVM
// rejects, the watchdog reclaims, the hypervisor and dom0 survive.
// ---------------------------------------------------------------------

#[test]
fn wild_write_into_the_hypervisor_is_rejected_and_dom0_survives() {
    let evil = sabotage(
        "e1000_xmit_frame:",
        r#"
    pushl %eax
    movl $0xf0000100, %eax      # hypervisor text/data region
    movl $0x41414141, (%eax)    # corrupt it
    popl %eax
"#,
    );
    let opts = SystemOptions {
        driver_source: Some(evil),
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    match sys.transmit_one() {
        Err(SystemError::DriverAborted(reason)) => {
            assert!(reason.contains("svm"), "SVM must be the rejector: {reason}");
        }
        other => panic!("expected driver abort, got {other:?}"),
    }
    // The abort is sticky but contained: the hypervisor survives and
    // refuses further fast-path invocations.
    assert!(sys.hyperdrv.as_ref().unwrap().is_aborted());
    assert!(matches!(
        sys.transmit_one(),
        Err(SystemError::DriverAborted(_))
    ));
    assert!(
        sys.world.svm_hyp.as_ref().unwrap().stats().rejected >= 1,
        "the wild store must show up in the SVM reject counter"
    );
    // dom0's VM driver instance still serves config operations: the
    // faulted *hypervisor* instance is dead, not the driver domain.
    let stats_entry = sys.driver.entry("e1000_get_stats").unwrap();
    let dom0 = sys.world.kernel.space;
    let netdev = sys.netdev as u32;
    twindrivers::kernel::call_function(
        &mut sys.machine,
        &mut sys.world,
        dom0,
        twin_machine::ExecMode::Guest,
        twin_kernel::DOM0_STACK_BASE + twin_kernel::DOM0_STACK_PAGES * 4096,
        stats_entry,
        &[netdev],
        1_000_000,
    )
    .expect("dom0 instance must keep serving after the hypervisor abort");
}

#[test]
fn wild_write_into_another_guest_is_rejected() {
    let evil = sabotage(
        "e1000_xmit_frame:",
        r#"
    pushl %eax
    movl $0x40000000, %eax      # a guest heap address, not dom0's
    movl $0x42424242, (%eax)
    popl %eax
"#,
    );
    let opts = SystemOptions {
        driver_source: Some(evil),
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    assert!(matches!(
        sys.transmit_one(),
        Err(SystemError::DriverAborted(_))
    ));
}

#[test]
fn watchdog_reclaims_an_infinite_loop() {
    let opts = SystemOptions {
        driver_source: Some(fault_injected_source(FaultClass::InfiniteLoop)),
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    // Dormant payload: traffic flows normally until armed.
    sys.transmit_one().unwrap();
    sys.arm_driver_fault(FaultClass::InfiniteLoop.arm_value(0))
        .unwrap();
    match sys.transmit_one() {
        Err(SystemError::DriverAborted(reason)) => {
            assert!(
                reason.contains("watchdog") || reason.contains("budget"),
                "the execution watchdog must be the reclaimer: {reason}"
            );
        }
        other => panic!("expected watchdog abort, got {other:?}"),
    }
}

#[test]
fn the_unmodified_driver_triggers_none_of_this() {
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    for _ in 0..50 {
        sys.transmit_one().unwrap();
    }
    assert_eq!(sys.world.svm_hyp.as_ref().unwrap().stats().rejected, 0);
}

// ---------------------------------------------------------------------
// Satellite regressions: abort must not leak.
// ---------------------------------------------------------------------

/// Regression: abort used to leave every guest's zero-copy grants
/// cached in the faulted image — mappings outliving the trust decision,
/// with no `grant_unmap` ever paid. Teardown now revokes them all, and
/// the registry proves each revoked mapping paid exactly one unmap.
#[test]
fn abort_revokes_zero_copy_grants_with_balanced_unmaps() {
    let nics = 2u32;
    let opts = SystemOptions {
        driver_source: Some(fault_injected_source(FaultClass::WildWrite)),
        num_nics: nics as usize,
        shard: ShardPolicy::FlowHash,
        zero_copy: true,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    // Warm the grant cache on both devices.
    let mut seq = 0u64;
    for _ in 0..2 {
        for d in 0..nics {
            let f = frames_for(d, nics, 8, &mut seq);
            assert_eq!(sys.receive_burst(&f).unwrap(), 8);
        }
    }
    let warm = sys.grant_cache_stats().unwrap();
    assert!(warm.hits > 0, "cache must be warm before the fault");
    assert_eq!(warm.revoked, 0);

    let m0 = sys.metrics();
    sys.arm_driver_fault(FaultClass::WildWrite.arm_value(0))
        .unwrap();
    let f = frames_for(0, nics, 8, &mut seq);
    abort_reason(sys.receive_burst(&f));

    let delta = sys.metrics().delta_since(&m0);
    let revoked = delta.counter("grantcache.revoked");
    assert!(revoked > 0, "abort must revoke the cached grants");
    assert_eq!(
        delta.counter("grant.unmaps"),
        revoked,
        "every revoked mapping owes exactly one grant_unmap"
    );
    assert_eq!(
        sys.grant_cache_stats().unwrap().revoked,
        revoked,
        "cache and grant-table accounting must agree"
    );
}

/// Regression: abort with a non-empty deferred-upcall ring used to
/// strand queued frees (skb-pool leak) and leave the flush-deadline
/// timer armed forever toward a dead ring. Teardown now drains the
/// ring — replaying restorative frees natively, discarding the rest
/// with accounting — and disarms the deadline.
#[test]
fn abort_drains_the_upcall_ring_and_disarms_the_flush_deadline() {
    let nics = 2u32;
    let deadline = 5_000_000u64;
    let opts = SystemOptions {
        driver_source: Some(fault_injected_source(FaultClass::WildWrite)),
        num_nics: nics as usize,
        shard: ShardPolicy::FlowHash,
        upcall_mode: UpcallMode::Deferred,
        upcall_count: 9,
        upcall_flush_deadline_cycles: Some(deadline),
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    let mut seq = 0u64;
    for _ in 0..2 {
        for d in 0..nics {
            let f = frames_for(d, nics, 8, &mut seq);
            assert_eq!(sys.receive_burst(&f).unwrap(), 8);
        }
    }
    // Steady state: every pass flushed its own ring.
    assert_eq!(sys.world.hyper.as_ref().unwrap().engine.depth(), 0);
    let pool_base = sys.world.kernel.pool.available();

    // Queue a free the driver owes dom0 (an skb leaves the pool) and a
    // non-restorative unmap, arming the flush deadline.
    let space = sys.world.kernel.space;
    let skb = sys
        .world
        .kernel
        .pool
        .alloc(&mut sys.machine, space)
        .expect("pool has skbs");
    {
        let twindrivers::system::World {
            kernel, xen, hyper, ..
        } = &mut sys.world;
        let hs = hyper.as_mut().unwrap();
        let xen = xen.as_mut().unwrap();
        hs.enqueue_upcall(
            "dev_kfree_skb_any",
            vec![skb.0 as u32],
            &mut sys.machine,
            kernel,
            xen,
        )
        .unwrap();
        hs.enqueue_upcall(
            "dma_unmap_single",
            vec![0x1234, 64],
            &mut sys.machine,
            kernel,
            xen,
        )
        .unwrap();
    }
    let engine = &sys.world.hyper.as_ref().unwrap().engine;
    assert_eq!(engine.depth(), 2);
    assert!(engine.flush_due_at().is_some(), "deadline armed on enqueue");
    assert_eq!(sys.world.kernel.pool.available(), pool_base - 1);

    // The armed pass: device 1's fault body sits at the handler entry,
    // so the abort lands with the two queued entries still in the ring
    // — before any conflicting native routine could force a flush and
    // before the burst-end flush point.
    let f = frames_for(1, nics, 8, &mut seq);
    sys.arm_driver_fault(FaultClass::WildWrite.arm_value(1))
        .unwrap();
    abort_reason(sys.receive_burst(&f));

    // Drained, accounted, disarmed — and the queued free executed, so
    // the skb is back (ring teardown returns more on top).
    assert!(sys.machine.meter.event("upcall_replayed") >= 1);
    assert!(sys.machine.meter.event("upcall_discarded") >= 1);
    let engine = &sys.world.hyper.as_ref().unwrap().engine;
    assert_eq!(engine.depth(), 0, "no upcall may stay queued past abort");
    assert!(engine.flush_due_at().is_none(), "deadline must be disarmed");
    assert!(sys.world.kernel.pool.available() >= pool_base);

    // An idle epoch spanning several deadline windows must not try to
    // flush toward the dead ring.
    let flushes = sys.world.hyper.as_ref().unwrap().engine.stats.flushes;
    sys.run_idle(3 * deadline).unwrap();
    let engine = &sys.world.hyper.as_ref().unwrap().engine;
    assert_eq!(engine.stats.flushes, flushes);
    assert_eq!(engine.depth(), 0);
}

/// Regression: every quarantine → reset episode used to leak a ring's
/// worth of skbs (the old rings' buffers were simply forgotten). Pool
/// occupancy at the same schedule point must now be identical across
/// repeated episodes.
#[test]
fn recovery_conserves_skb_pools_across_episodes() {
    let nics = 2u32;
    let opts = SystemOptions {
        driver_source: Some(fault_injected_source(FaultClass::WildWrite)),
        num_nics: nics as usize,
        shard: ShardPolicy::FlowHash,
        upcall_mode: UpcallMode::Deferred,
        upcall_count: 9,
        upcall_flush_deadline_cycles: Some(5_000_000),
        zero_copy: true,
        fault_recovery: true,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    let mut seq = 0u64;
    let round = |sys: &mut System, seq: &mut u64| {
        for d in 0..nics {
            let f = frames_for(d, nics, 8, seq);
            assert_eq!(sys.receive_burst(&f).unwrap(), 8);
        }
    };
    for _ in 0..3 {
        round(&mut sys, &mut seq);
    }
    let occupancy = |sys: &System| {
        (
            sys.world.kernel.pool.available(),
            sys.world.kernel.hyper_pool.as_ref().unwrap().available(),
        )
    };
    let baseline = occupancy(&sys);

    for episode in 0..3u32 {
        sys.arm_driver_fault(FaultClass::WildWrite.arm_value(1))
            .unwrap();
        let f = frames_for(1, nics, 8, &mut seq);
        abort_reason(sys.receive_burst(&f));
        // Recovery + settle: the next invocation resets the device.
        round(&mut sys, &mut seq);
        round(&mut sys, &mut seq);
        assert_eq!(
            occupancy(&sys),
            baseline,
            "episode {episode} changed pool occupancy: a reset leaks skbs"
        );
    }
    assert_eq!(sys.recovery_log().len(), 3);
    assert!(sys.quarantined_devices().is_empty());
}

/// Regression: abort inside a NAPI poll pass used to leave the IRQ
/// IMC-masked with the `poll_entered_at` span open forever — the
/// residency metric kept growing and the device could never interrupt
/// again. Teardown now closes the span; recovery's `e1000_open`
/// re-enables `IMS`.
#[test]
fn abort_closes_the_napi_poll_span_and_recovery_rearms_the_irq() {
    let opts = SystemOptions {
        driver_source: Some(fault_injected_source(FaultClass::WildWrite)),
        num_nics: 1,
        napi_weight: 8,
        fault_recovery: true,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    let mut seq = 0u64;
    let a = frames_for(0, 1, 4, &mut seq);
    let now = sys.now_cycles();
    sys.rx_open_loop_arrival(&a, now).unwrap();
    assert!(sys.in_poll_mode(0), "first irq enters poll mode");
    assert!(sys.world.nics[0].rx_irq_masked());

    sys.arm_driver_fault(FaultClass::WildWrite.arm_value(0))
        .unwrap();
    let until = sys.now_cycles() + 600_000;
    match sys.rx_open_loop_service(until) {
        Err(SystemError::DriverAborted(_)) => {}
        other => panic!("expected abort inside the poll pass, got {other:?}"),
    }

    // Span closed at the abort: mode off, residency frozen.
    assert!(!sys.in_poll_mode(0), "teardown must exit poll mode");
    assert!(sys.machine.meter.event("napi_exit") >= 1);
    let frozen = sys.poll_mode_cycles(0);
    sys.run_idle(100_000).unwrap();
    assert_eq!(
        sys.poll_mode_cycles(0),
        frozen,
        "a closed span must not keep accruing residency"
    );
    // The IRQ stays masked until recovery re-opens the device.
    assert!(sys.world.nics[0].rx_irq_masked());

    // Next traffic toward the quarantined device: live recovery, IMS
    // re-armed, frames served.
    let b = frames_for(0, 1, 8, &mut seq);
    assert_eq!(sys.receive_burst(&b).unwrap(), 8);
    assert_eq!(sys.recovery_log().len(), 1);
    assert!(sys.quarantined_devices().is_empty());
    assert!(
        !sys.world.nics[0].rx_irq_masked(),
        "recovery must re-enable IMS"
    );
}

/// Regression: the abort path used to be invisible to the flight
/// recorder — no typed event, nothing to gate a trace artifact on. A
/// fault episode now emits the full typed sequence, and in recovery
/// mode the quarantine brackets pair up.
#[test]
fn fault_episodes_emit_typed_trace_events() {
    let nics = 2u32;
    let build = |recovery: bool| {
        let opts = SystemOptions {
            driver_source: Some(fault_injected_source(FaultClass::WildWrite)),
            num_nics: nics as usize,
            shard: ShardPolicy::FlowHash,
            tracing: true,
            fault_recovery: recovery,
            ..SystemOptions::default()
        };
        System::build_with(Config::TwinDrivers, &opts).unwrap()
    };

    // Recovery mode: detect → enter → account → reset → exit.
    let mut sys = build(true);
    let mut seq = 0u64;
    for d in 0..nics {
        let f = frames_for(d, nics, 8, &mut seq);
        sys.receive_burst(&f).unwrap();
    }
    sys.arm_driver_fault(FaultClass::WildWrite.arm_value(1))
        .unwrap();
    let f = frames_for(1, nics, 8, &mut seq);
    abort_reason(sys.receive_burst(&f));
    let f = frames_for(1, nics, 8, &mut seq);
    assert_eq!(sys.receive_burst(&f).unwrap(), 8);

    let kinds = sys.machine.trace.counts_by_kind();
    for kind in [
        "fault_detected",
        "quarantine_enter",
        "inflight_accounted",
        "device_reset",
        "quarantine_exit",
    ] {
        assert_eq!(kinds.get(kind), Some(&1), "missing or duplicated {kind}");
    }
    assert_eq!(sys.machine.meter.event("driver_abort"), 1);
    assert_eq!(sys.machine.meter.event("quarantine_enter"), 1);
    assert_eq!(sys.machine.meter.event("quarantine_exit"), 1);
    assert_eq!(sys.machine.meter.event("device_reset"), 1);

    // Sticky mode: detect and account, but never a quarantine bracket
    // (the whole image is dead, not one device).
    let mut sys = build(false);
    let mut seq = 0u64;
    sys.arm_driver_fault(FaultClass::WildWrite.arm_value(0))
        .unwrap();
    let f = frames_for(0, nics, 8, &mut seq);
    abort_reason(sys.receive_burst(&f));
    let kinds = sys.machine.trace.counts_by_kind();
    assert_eq!(kinds.get("fault_detected"), Some(&1));
    assert_eq!(kinds.get("inflight_accounted"), Some(&1));
    assert_eq!(kinds.get("quarantine_enter"), None);
    assert_eq!(kinds.get("device_reset"), None);
}

// ---------------------------------------------------------------------
// The tentpole: quarantine one device, recover it live, and prove the
// blast radius is zero.
// ---------------------------------------------------------------------

/// Sibling devices must see *bit-exact* traffic through a fault
/// episode — not "within tolerance": the identical frame sequence an
/// unfaulted control run delivers. The faulted device loses exactly
/// the armed burst and nothing else.
#[test]
fn recovery_preserves_sibling_traffic_bit_exact() {
    let nics = 4u32;
    let dev = 1u32;
    let burst = 8usize;
    let build = |recovery: bool| {
        let opts = SystemOptions {
            driver_source: Some(fault_injected_source(FaultClass::WildWrite)),
            num_nics: nics as usize,
            shard: ShardPolicy::FlowHash,
            zero_copy: true,
            fault_recovery: recovery,
            ..SystemOptions::default()
        };
        System::build_with(Config::TwinDrivers, &opts).unwrap()
    };
    let mut sys = build(true);
    let mut control = build(false);

    let mut seq = 0u64;
    let mut lost_range = 0u64..0;
    for round in 0..7 {
        for d in 0..nics {
            let f = frames_for(d, nics, burst, &mut seq);
            assert_eq!(control.receive_burst(&f).unwrap(), burst);
            if round == 3 && d == dev {
                lost_range = f[0].seq..f[0].seq + burst as u64;
                sys.arm_driver_fault(FaultClass::WildWrite.arm_value(dev))
                    .unwrap();
                abort_reason(sys.receive_burst(&f));
            } else {
                assert_eq!(sys.receive_burst(&f).unwrap(), burst);
            }
        }
    }
    assert_eq!(sys.recovery_log().len(), 1);
    assert!(sys.quarantined_devices().is_empty());

    let gid = sys.guest.unwrap();
    let faulted = sys
        .world
        .xen
        .as_ref()
        .unwrap()
        .domain(gid)
        .rx_delivered
        .clone();
    let gid_c = control.guest.unwrap();
    let unfaulted = control
        .world
        .xen
        .as_ref()
        .unwrap()
        .domain(gid_c)
        .rx_delivered
        .clone();
    // Siblings: the exact same frames in the exact same per-flow order.
    for d in (0..nics).filter(|d| *d != dev) {
        let flow = flow_for(d, nics);
        let got: Vec<&Frame> = faulted.iter().filter(|f| f.flow == flow).collect();
        let want: Vec<&Frame> = unfaulted.iter().filter(|f| f.flow == flow).collect();
        assert_eq!(got, want, "sibling dev{d} traffic diverged");
    }
    // The faulted device: the control sequence minus exactly the armed
    // burst — bounded, accounted loss, nothing more.
    let flow = flow_for(dev, nics);
    let got: Vec<u64> = faulted
        .iter()
        .filter(|f| f.flow == flow)
        .map(|f| f.seq)
        .collect();
    let want: Vec<u64> = unfaulted
        .iter()
        .filter(|f| f.flow == flow)
        .map(|f| f.seq)
        .filter(|s| !lost_range.contains(s))
        .collect();
    assert_eq!(got, want, "faulted dev must lose the armed burst exactly");
}

/// The sweep harness itself, at test scale: full recovery, zero blast
/// radius, loss bounded to one burst per episode, for a second fault
/// class (wedged ring) so both SVM-reject shapes stay covered here.
#[test]
fn fault_harness_measures_full_recovery() {
    let nics = 2usize;
    let build = |recovery: bool| {
        let opts = SystemOptions {
            driver_source: Some(fault_injected_source(FaultClass::WedgedRing)),
            num_nics: nics,
            shard: ShardPolicy::FlowHash,
            fault_recovery: recovery,
            ..SystemOptions::default()
        };
        System::build_with(Config::TwinDrivers, &opts).unwrap()
    };
    let mut sys = build(true);
    let mut control = build(false);
    let p = measure_fault_recovery(&mut sys, &mut control, 1, FaultClass::WedgedRing, 2, 8, 1)
        .expect("fault point");
    assert_eq!(p.pre_delivered, 16);
    assert_eq!(p.post_delivered, 16, "recovery must restore full goodput");
    assert_eq!(p.sibling_delivered, p.sibling_control, "zero blast radius");
    assert_eq!(p.lost_frames, 8, "exactly the armed burst is lost");
    assert!(p.recovery_cycles > 0, "the reset costs real virtual time");
    assert_eq!(sys.recovery_log().len(), 1);
}

// ---------------------------------------------------------------------
// Guard rails.
// ---------------------------------------------------------------------

#[test]
fn fault_recovery_requires_the_twindrivers_config() {
    let opts = SystemOptions {
        fault_recovery: true,
        ..SystemOptions::default()
    };
    match System::build_with(Config::XenGuest, &opts) {
        Err(SystemError::Build(msg)) => assert!(msg.contains("fault_recovery")),
        other => panic!("expected a build error, got {other:?}"),
    }
}

#[test]
fn arming_requires_a_fault_injected_driver() {
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    match sys.arm_driver_fault(1) {
        Err(SystemError::Build(msg)) => assert!(msg.contains("fault_arm")),
        other => panic!("expected a build error, got {other:?}"),
    }
}
