//! The burst datapath's correctness contract:
//!
//! * **burst-of-1 equivalence** — `transmit_one`/`receive_one` are pure
//!   burst-of-1 wrappers, so a run of N per-packet calls costs exactly
//!   what N `*_burst(1)` calls cost and puts identical frames on the
//!   wire (the seed's per-packet figures reproduce unchanged);
//! * **in-order delivery** — a burst of N delivers the same frames in
//!   the same order as N per-packet calls, on both directions;
//! * **amortization** — bigger bursts strictly reduce notifications
//!   (doorbells, interrupts, virqs) without changing what's delivered.

use twin_machine::CostDomain;
use twin_net::{EtherType, Frame, MacAddr, MTU};
use twindrivers::{peer_mac, Config, System};

fn rx_frame(dst: MacAddr, seq: u64) -> Frame {
    Frame {
        dst,
        src: peer_mac(),
        ethertype: EtherType::Ipv4,
        payload_len: MTU,
        flow: 2,
        seq,
    }
}

fn guest_mac(config: Config) -> MacAddr {
    match config {
        Config::XenGuest | Config::TwinDrivers => MacAddr::for_guest(1),
        _ => MacAddr::for_guest(0),
    }
}

#[test]
fn burst_of_one_costs_exactly_the_per_packet_path() {
    for config in Config::ALL {
        let mut singles = System::build(config).unwrap();
        let mut bursts = System::build(config).unwrap();
        for _ in 0..20 {
            singles.transmit_one().unwrap();
            assert_eq!(bursts.transmit_burst(1).unwrap(), 1);
        }
        assert_eq!(
            singles.take_wire_frames(),
            bursts.take_wire_frames(),
            "{config}: identical wire traffic"
        );
        for d in CostDomain::ALL {
            assert_eq!(
                singles.machine.meter.cycles(d),
                bursts.machine.meter.cycles(d),
                "{config}: {d} cycles diverge between per-packet and burst-of-1"
            );
        }
        // Receive side.
        let mut singles = System::build(config).unwrap();
        let mut bursts = System::build(config).unwrap();
        let mac = guest_mac(config);
        for i in 0..20u64 {
            singles.receive_frame(&rx_frame(mac, i)).unwrap();
            assert_eq!(bursts.receive_burst(&[rx_frame(mac, i)]).unwrap(), 1);
        }
        assert_eq!(singles.delivered_rx(), 20, "{config}");
        assert_eq!(bursts.delivered_rx(), 20, "{config}");
        for d in CostDomain::ALL {
            assert_eq!(
                singles.machine.meter.cycles(d),
                bursts.machine.meter.cycles(d),
                "{config}: rx {d} cycles diverge"
            );
        }
    }
}

#[test]
fn tx_burst_matches_per_packet_frames_in_order() {
    for config in Config::ALL {
        let mut singles = System::build(config).unwrap();
        for _ in 0..24 {
            singles.transmit_one().unwrap();
        }
        let expected = singles.take_wire_frames();
        let mut bursts = System::build(config).unwrap();
        assert_eq!(bursts.transmit_burst(24).unwrap(), 24, "{config}");
        assert_eq!(bursts.take_wire_frames(), expected, "{config}");
    }
}

#[test]
fn rx_burst_delivers_all_frames_in_order() {
    for config in Config::ALL {
        let mut sys = System::build(config).unwrap();
        let mac = guest_mac(config);
        let frames: Vec<Frame> = (0..24).map(|i| rx_frame(mac, i)).collect();
        assert_eq!(sys.receive_burst(&frames).unwrap(), 24, "{config}");
        assert_eq!(sys.delivered_rx(), 24, "{config}");
        let delivered: Vec<u64> = match config {
            Config::NativeLinux | Config::XenDom0 => sys
                .world
                .kernel
                .rx_delivered
                .iter()
                .map(|f| f.seq)
                .collect(),
            _ => {
                let gid = sys.guest.unwrap();
                sys.world
                    .xen
                    .as_ref()
                    .unwrap()
                    .domain(gid)
                    .rx_delivered
                    .iter()
                    .map(|f| f.seq)
                    .collect()
            }
        };
        assert_eq!(delivered, (0..24).collect::<Vec<u64>>(), "{config}");
    }
}

#[test]
fn rx_bursts_larger_than_the_ring_split_and_complete() {
    // 127 buffers are posted; a 200-frame burst needs two hardware
    // passes, each replenishing the ring — nothing is dropped.
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    let frames: Vec<Frame> = (0..200)
        .map(|i| rx_frame(MacAddr::for_guest(1), i))
        .collect();
    assert_eq!(sys.receive_burst(&frames).unwrap(), 200);
    assert_eq!(sys.delivered_rx(), 200);
    let irqs = sys.machine.meter.event("irq");
    assert!(
        (2..=3).contains(&irqs),
        "split burst coalesces into a handful of interrupts, got {irqs}"
    );
}

#[test]
fn bigger_bursts_mean_fewer_notifications_same_delivery() {
    let mut small = System::build(Config::TwinDrivers).unwrap();
    let mut large = System::build(Config::TwinDrivers).unwrap();
    for _ in 0..8 {
        assert_eq!(small.transmit_burst(4).unwrap(), 4);
    }
    assert_eq!(large.transmit_burst(32).unwrap(), 32);
    assert_eq!(small.take_wire_frames(), large.take_wire_frames());
    let db_small = small.machine.meter.event("doorbell");
    let db_large = large.machine.meter.event("doorbell");
    assert!(db_small >= 8, "one doorbell per burst of 4 (+warmless)");
    assert!(
        db_large < db_small,
        "32-burst ({db_large} doorbells) must beat 8x4 ({db_small})"
    );
    let hc_small = small.world.xen.as_ref().unwrap().hypercalls;
    let hc_large = large.world.xen.as_ref().unwrap().hypercalls;
    assert!(hc_large < hc_small, "one hypercall per burst");
}

#[test]
fn bursts_beyond_max_burst_split_instead_of_clamping() {
    let mut sys = System::build(Config::NativeLinux).unwrap();
    assert_eq!(sys.transmit_burst(200).unwrap(), 200);
    let wire = sys.take_wire_frames();
    assert_eq!(wire.len(), 200);
    assert!(wire.windows(2).all(|w| w[0].seq < w[1].seq));
}

#[test]
fn pool_exhaustion_mid_burst_does_not_leak_skbs() {
    use twindrivers::SystemOptions;
    // `e1000_open` posts 128 RX buffers from the same pool, so a
    // 160-skb pool leaves ~32 for transmit — less than the burst. The
    // burst must fail cleanly with every already-allocated skb returned,
    // and per-packet transmit keeps working afterwards.
    let opts = SystemOptions {
        pool_size: 160,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::NativeLinux, &opts).unwrap();
    assert!(
        sys.transmit_burst(64).is_err(),
        "pool can't cover the burst"
    );
    for _ in 0..40 {
        sys.transmit_one().unwrap();
    }
    assert_eq!(sys.take_wire_frames().len(), 40, "pool recovered fully");
}

#[test]
fn polled_rx_forwards_bridged_frames_on_baseline_guest() {
    let mut sys = System::build(Config::XenGuest).unwrap();
    let frames: Vec<Frame> = (0..6).map(|i| rx_frame(MacAddr::for_guest(1), i)).collect();
    assert_eq!(
        sys.world.nics[0].deliver_batch(&mut sys.machine.phys, &frames),
        6
    );
    assert_eq!(sys.poll_rx_batch().unwrap(), 6);
    assert_eq!(sys.delivered_rx(), 6, "frames crossed the I/O channel");
    assert!(
        sys.world.kernel.rx_delivered.is_empty(),
        "backend queue drained"
    );
}

#[test]
fn interleaved_burst_sizes_never_drop_or_reorder() {
    // Deterministic version of the property in tests/props.rs.
    let sizes = [1usize, 7, 1, 32, 3, 16, 1, 128, 5];
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    let mut sent = 0u64;
    for s in sizes {
        assert_eq!(sys.transmit_burst(s).unwrap(), s);
        sent += s as u64;
        // Interleave receive bursts of a different size.
        let frames: Vec<Frame> = (0..(s / 2).max(1) as u64)
            .map(|i| rx_frame(MacAddr::for_guest(1), 1_000 + i))
            .collect();
        sys.receive_burst(&frames).unwrap();
    }
    let wire = sys.take_wire_frames();
    assert_eq!(wire.len() as u64, sent, "no transmit ever dropped");
    for w in wire.windows(2) {
        assert!(w[0].seq < w[1].seq, "wire order preserved across bursts");
    }
}
