//! Synchronization between the two driver instances (paper §4.4): both
//! operate on the *same* atomic lock words in dom0 memory, so the
//! original driver's SMP locking keeps working unchanged.

use twin_machine::ExecMode;
use twindrivers::kernel::e1000;
use twindrivers::{Config, System};

const TX_LOCK_OFF: u64 = e1000::adapter::TX_LOCK;

#[test]
fn hypervisor_instance_respects_dom0_held_lock() {
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    let adapter = sys.driver.data_symbol("adapter").unwrap();
    let dom0 = sys.world.kernel.space;

    // dom0 (conceptually the VM instance mid-critical-section) holds the
    // TX lock: write the shared lock word through dom0's mapping.
    sys.machine
        .write_u32(dom0, ExecMode::Guest, adapter + TX_LOCK_OFF, 1)
        .unwrap();

    // The hypervisor instance's spin_trylock sees the word via SVM and
    // backs off: the transmit reports busy, nothing reaches the wire.
    sys.transmit_one().unwrap();
    assert_eq!(sys.take_wire_frames().len(), 0, "lock held: xmit busy");

    // Release the lock; transmission proceeds.
    sys.machine
        .write_u32(dom0, ExecMode::Guest, adapter + TX_LOCK_OFF, 0)
        .unwrap();
    sys.transmit_one().unwrap();
    assert_eq!(sys.take_wire_frames().len(), 1);
}

#[test]
fn lock_released_after_every_transmit() {
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    let adapter = sys.driver.data_symbol("adapter").unwrap();
    let dom0 = sys.world.kernel.space;
    for _ in 0..5 {
        sys.transmit_one().unwrap();
        let word = sys
            .machine
            .read_u32(dom0, ExecMode::Guest, adapter + TX_LOCK_OFF)
            .unwrap();
        assert_eq!(word, 0, "driver unlocks on every exit path");
    }
}

#[test]
fn interrupt_handler_backs_off_when_lock_held() {
    // e1000_intr takes the TX lock only with trylock before reaping; if
    // dom0 holds it, the handler must still complete the RX work.
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    let adapter = sys.driver.data_symbol("adapter").unwrap();
    let dom0 = sys.world.kernel.space;
    sys.machine
        .write_u32(dom0, ExecMode::Guest, adapter + TX_LOCK_OFF, 1)
        .unwrap();
    sys.receive_one().unwrap();
    assert_eq!(
        sys.delivered_rx(),
        1,
        "receive path does not need the TX lock"
    );
    sys.machine
        .write_u32(dom0, ExecMode::Guest, adapter + TX_LOCK_OFF, 0)
        .unwrap();
}

#[test]
fn virtual_interrupt_flag_defers_softirq_work() {
    // Paper §4.4: the hypervisor respects dom0's virtual interrupt flag
    // by running the driver interrupt in schedulable softirq context.
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    // Mask dom0's virtual interrupts.
    sys.world
        .xen
        .as_mut()
        .unwrap()
        .domain_mut(twin_xen::DomId::DOM0)
        .virq_enabled = false;
    // The interrupt work is queued but not run.
    let frame = twin_net::Frame::data(
        twin_net::MacAddr::for_guest(1),
        twindrivers::peer_mac(),
        1,
        0,
    );
    assert!(sys.world.nics[0].deliver(&mut sys.machine.phys, &frame));
    sys.world
        .xen
        .as_mut()
        .unwrap()
        .raise_softirq(twin_xen::Softirq::DriverIrq { nic: 0 });
    assert!(
        sys.world
            .xen
            .as_mut()
            .unwrap()
            .take_runnable_softirqs()
            .is_empty(),
        "softirq deferred while dom0 masks virtual interrupts"
    );
    // Unmask: work becomes runnable.
    sys.world
        .xen
        .as_mut()
        .unwrap()
        .domain_mut(twin_xen::DomId::DOM0)
        .virq_enabled = true;
    assert_eq!(
        sys.world
            .xen
            .as_mut()
            .unwrap()
            .take_runnable_softirqs()
            .len(),
        1
    );
}
