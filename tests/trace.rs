//! The flight recorder and metrics registry end to end: tracing is
//! *observation only* — a traced run charges exactly the cycles of an
//! untraced run — identical runs produce identical event streams, ring
//! overflow keeps the stream well-formed and is surfaced in the
//! registry, and the chrome exporter emits the episodes and instants
//! the sweep harness relies on.

use twin_net::{EtherType, Frame, MacAddr, MTU};
use twin_trace::export::chrome_trace_json;
use twin_trace::{FlightRecorder, TraceEvent};
use twin_xen::DomId;
use twindrivers::{peer_mac, Config, ShardPolicy, System, SystemOptions};

fn mk(dst: MacAddr, flow: u32, seq: u64) -> Frame {
    Frame {
        dst,
        src: peer_mac(),
        ethertype: EtherType::Ipv4,
        payload_len: MTU,
        flow,
        seq,
    }
}

/// The livelock sweep's controlled shape, scaled down: NAPI, DRR
/// weights, queue cap and admission watermark all active so every event
/// family has a chance to fire.
fn overload_opts(tracing: bool) -> SystemOptions {
    SystemOptions {
        num_nics: 2,
        shard: ShardPolicy::FlowHash,
        rx_queue_cap: Some(64),
        napi_weight: 16,
        rx_backlog_watermark: Some(48),
        rx_flush_quantum: 8,
        guest_weights: vec![(2, 64)],
        tracing,
        ..SystemOptions::default()
    }
}

/// Drives an open-loop flood plus a victim trickle through `sys` and
/// returns the count delivered — deterministic, heavy enough to enter
/// poll mode and shed at the watermark.
fn drive(sys: &mut System) -> u64 {
    let flood = MacAddr::for_guest(1);
    let victim = MacAddr::for_guest(2);
    let mut seq = 0u64;
    let t0 = sys.now_cycles();
    let gap = 40_000u64;
    for i in 0..40u64 {
        let at = t0 + i * gap;
        sys.rx_open_loop_service(at).unwrap();
        let mut frames = Vec::new();
        for _ in 0..4 {
            frames.push(mk(victim, 900, seq));
            seq += 1;
        }
        for _ in 0..80 {
            frames.push(mk(flood, 800, seq));
            seq += 1;
        }
        sys.rx_open_loop_arrival(&frames, at).unwrap();
    }
    sys.rx_open_loop_service(t0 + 40 * gap).unwrap();
    sys.delivered_rx() as u64
}

#[test]
fn identical_runs_produce_identical_streams() {
    let run = || {
        let mut sys = System::build_with(Config::TwinDrivers, &overload_opts(true)).unwrap();
        sys.add_guest(MacAddr::for_guest(2)).unwrap();
        drive(&mut sys);
        sys
    };
    let a = run();
    let b = run();
    assert!(!a.machine.trace.is_empty(), "the drive must record events");
    let ra: Vec<_> = a.machine.trace.records().cloned().collect();
    let rb: Vec<_> = b.machine.trace.records().cloned().collect();
    assert_eq!(ra, rb, "identical runs must record identical streams");
    assert_eq!(
        chrome_trace_json(&a.machine.trace),
        chrome_trace_json(&b.machine.trace)
    );
    assert_eq!(a.metrics().to_json(), b.metrics().to_json());
}

#[test]
fn tracing_charges_zero_cycles() {
    // The whole point of the design: a traced run is *bit-exact* with an
    // untraced run everywhere that counts — per-domain cycles, named
    // meter events, device stats, deliveries, drops.
    let run = |tracing: bool| {
        let mut sys = System::build_with(Config::TwinDrivers, &overload_opts(tracing)).unwrap();
        sys.add_guest(MacAddr::for_guest(2)).unwrap();
        let delivered = drive(&mut sys);
        (delivered, sys)
    };
    let (d_on, on) = run(true);
    let (d_off, off) = run(false);
    assert!(!on.machine.trace.is_empty());
    assert_eq!(off.machine.trace.len(), 0, "untraced run records nothing");
    assert_eq!(d_on, d_off);
    assert_eq!(on.machine.meter.now(), off.machine.meter.now());
    assert_eq!(on.machine.meter.snapshot(), off.machine.meter.snapshot());
    assert_eq!(on.machine.meter.events(), off.machine.meter.events());
    for (na, nb) in on.world.nics.iter().zip(off.world.nics.iter()) {
        assert_eq!(na.stats(), nb.stats());
    }
    // The unified registry agrees too, once the recorder's own counters
    // (the only legitimate difference) are set aside.
    let strip = |sys: &System| {
        let mut m = sys.metrics();
        m.set("trace.events_recorded", 0);
        m.set("trace.events_dropped", 0);
        m.to_json()
    };
    assert_eq!(strip(&on), strip(&off));
}

#[test]
fn ring_overflow_evicts_oldest_and_stays_well_formed() {
    let mut sys = System::build_with(Config::TwinDrivers, &overload_opts(true)).unwrap();
    sys.add_guest(MacAddr::for_guest(2)).unwrap();
    sys.machine.trace.set_capacity(64);
    drive(&mut sys);
    let rec = &sys.machine.trace;
    assert!(rec.dropped() > 0, "the drive must overflow a 64-slot ring");
    assert_eq!(rec.len(), 64);
    assert_eq!(rec.recorded(), 64 + rec.dropped());
    // Well-formed after eviction: seq strictly increasing and dense,
    // virtual clock monotone non-decreasing.
    let recs: Vec<_> = rec.records().cloned().collect();
    for w in recs.windows(2) {
        assert_eq!(w[1].seq, w[0].seq + 1, "seq gap inside the ring");
        assert!(w[1].at >= w[0].at, "virtual clock ran backwards");
    }
    assert_eq!(recs[0].seq, rec.dropped(), "oldest surviving seq = dropped");
    // The loss is surfaced in the registry, not silent.
    let m = sys.metrics();
    assert_eq!(m.counter("trace.events_dropped"), rec.dropped());
    assert_eq!(m.counter("trace.events_recorded"), rec.recorded());
    // The exporter still produces a parseable stream.
    assert!(chrome_trace_json(rec).starts_with("{\"traceEvents\": ["));
}

#[test]
fn chrome_export_has_napi_episodes_and_drop_instants() {
    let mut sys = System::build_with(Config::TwinDrivers, &overload_opts(true)).unwrap();
    sys.add_guest(MacAddr::for_guest(2)).unwrap();
    drive(&mut sys);
    let kinds = sys.machine.trace.counts_by_kind();
    assert!(kinds.get("napi_enter").copied().unwrap_or(0) > 0);
    assert!(kinds.get("napi_complete").copied().unwrap_or(0) > 0);
    assert!(kinds.get("early_drop").copied().unwrap_or(0) > 0);
    let json = chrome_trace_json(&sys.machine.trace);
    assert!(json.contains("\"name\": \"poll_mode\", \"ph\": \"X\""));
    assert!(json.contains("\"name\": \"early_drop\", \"ph\": \"i\""));
    assert!(json.contains("\"name\": \"drr_grant\", \"ph\": \"i\""));
}

#[test]
fn registry_deltas_reconstruct_a_measurement_window() {
    // Two snapshots bracketing the drive: the delta alone carries the
    // delivered counts and drop totals the accessors report.
    let mut sys = System::build_with(Config::TwinDrivers, &overload_opts(true)).unwrap();
    sys.add_guest(MacAddr::for_guest(2)).unwrap();
    let m0 = sys.metrics();
    drive(&mut sys);
    let d = sys.metrics().delta_since(&m0);
    assert_eq!(d.counter("guest1.delivered"), sys.delivered_rx() as u64);
    assert_eq!(
        d.counter("guest2.delivered"),
        sys.delivered_rx_for(DomId(2)) as u64
    );
    let delivered = d.counter("guest1.delivered") + d.counter("guest2.delivered");
    let early = d.counter("guest1.early_drops") + d.counter("guest2.early_drops");
    assert_eq!(early, sys.rx_early_drops());
    let rx_total: u64 = (0..2)
        .map(|i| d.counter(&format!("nic{i}.rx_packets")))
        .sum();
    assert!(rx_total >= delivered);
    assert!(d.counter("clock.now_cycles") > 0);
    // Poll-mode residency is visible and bounded by the window span.
    let poll: u64 = (0..2)
        .map(|i| d.counter(&format!("nic{i}.poll_cycles")))
        .sum();
    assert!(poll > 0, "the flood must enter poll mode");
    assert!(poll <= 2 * d.counter("clock.now_cycles"));
}

#[test]
fn recorder_capacity_shrink_is_safe_mid_stream() {
    let mut rec = FlightRecorder::with_capacity(8);
    rec.set_enabled(true);
    for i in 0..8u64 {
        rec.record(i * 10, "dom0", TraceEvent::TimerFire { data: i });
    }
    rec.set_capacity(3);
    assert_eq!(rec.len(), 3);
    let first = rec.records().next().unwrap().clone();
    assert_eq!(first.event, TraceEvent::TimerFire { data: 5 });
    assert_eq!(rec.dropped(), 5);
}
