//! The multi-NIC sharded datapath's correctness and scaling contract:
//!
//! * **degenerate equivalence** — sharding over one NIC is cycle-exact
//!   with the single-NIC burst pipeline (PR 1's path), for every policy;
//! * **per-flow ordering** — under [`ShardPolicy::FlowHash`] a flow is
//!   pinned to one NIC, so per-guest per-flow frame order survives any
//!   interleaving across four NICs;
//! * **spreading** — [`ShardPolicy::RoundRobin`] actually exercises every
//!   device, with per-device rings, interrupts and adapter slots;
//! * **aggregate scaling** — the acceptance criterion: RX+TX aggregate
//!   throughput scales ≥ 3× from one to four NICs at burst 32;
//! * **fairness** — the per-guest flush quantum bounds how long a
//!   flooding guest can delay other guests' virtual interrupts.

use twin_machine::CostDomain;
use twin_net::{EtherType, Frame, MacAddr, MTU};
use twindrivers::{
    measure_aggregate_throughput, peer_mac, Config, ShardPolicy, System, SystemOptions,
};

fn rx_frame(dst: MacAddr, flow: u32, seq: u64) -> Frame {
    Frame {
        dst,
        src: peer_mac(),
        ethertype: EtherType::Ipv4,
        payload_len: MTU,
        flow,
        seq,
    }
}

#[test]
fn sharding_over_one_nic_is_cycle_exact_with_the_burst_path() {
    // A 1-NIC sharded system is the degenerate case: identical wire
    // traffic and identical per-domain cycle counts to the default
    // build, for every policy and both directions.
    for policy in [
        ShardPolicy::Static(0),
        ShardPolicy::RoundRobin,
        ShardPolicy::FlowHash,
    ] {
        for config in [Config::TwinDrivers, Config::NativeLinux] {
            let mut plain = System::build(config).unwrap();
            let mut sharded = System::build_sharded(config, 1, policy).unwrap();
            for _ in 0..4 {
                assert_eq!(plain.transmit_burst(12).unwrap(), 12);
                assert_eq!(sharded.transmit_burst(12).unwrap(), 12);
            }
            assert_eq!(
                plain.take_wire_frames(),
                sharded.take_wire_frames(),
                "{config}/{policy:?}: identical wire traffic"
            );
            let mac = match config {
                Config::XenGuest | Config::TwinDrivers => MacAddr::for_guest(1),
                _ => MacAddr::for_guest(0),
            };
            for i in 0..3u64 {
                let frames: Vec<Frame> = (0..8).map(|j| rx_frame(mac, 2, i * 8 + j)).collect();
                assert_eq!(plain.receive_burst(&frames).unwrap(), 8);
                assert_eq!(sharded.receive_burst(&frames).unwrap(), 8);
            }
            assert_eq!(plain.delivered_rx(), sharded.delivered_rx());
            for d in CostDomain::ALL {
                assert_eq!(
                    plain.machine.meter.cycles(d),
                    sharded.machine.meter.cycles(d),
                    "{config}/{policy:?}: {d} cycles diverge on the 1-NIC degenerate path"
                );
            }
        }
    }
}

#[test]
fn flowhash_preserves_per_guest_flow_order_across_four_nics() {
    let mut sys = System::build_sharded(Config::TwinDrivers, 4, ShardPolicy::FlowHash).unwrap();
    let g1 = sys.guest.unwrap();
    let mac2 = MacAddr::for_guest(2);
    let mac3 = MacAddr::for_guest(3);
    let g2 = sys.add_guest(mac2).unwrap();
    let g3 = sys.add_guest(mac3).unwrap();

    // Six flows spread over three guests, interleaved in one stream of
    // bursts; the hash sprays flows across the four NICs.
    let macs = [MacAddr::for_guest(1), mac2, mac3];
    let mut seqs = [0u64; 6];
    for burst in 0..6 {
        let mut frames = Vec::new();
        for i in 0..24u32 {
            let flow = (burst + i) % 6;
            let mac = macs[(flow % 3) as usize];
            frames.push(rx_frame(mac, 10 + flow, seqs[flow as usize]));
            seqs[flow as usize] += 1;
        }
        assert_eq!(sys.receive_burst(&frames).unwrap(), 24);
    }

    // Sharding actually used more than one device.
    let active = sys
        .world
        .nics
        .iter()
        .filter(|n| n.stats().rx_packets > 0)
        .count();
    assert!(active >= 2, "only {active} NICs saw traffic");

    let xen = sys.world.xen.as_ref().unwrap();
    let mut total = 0;
    for (g, mac) in [(g1, macs[0]), (g2, mac2), (g3, mac3)] {
        let delivered = &xen.domain(g).rx_delivered;
        total += delivered.len();
        // No cross-delivery: every frame belongs to this guest.
        assert!(delivered.iter().all(|f| f.dst == mac));
        // Per-flow subsequence order is strictly increasing.
        for flow in 10..16u32 {
            let seqs: Vec<u64> = delivered
                .iter()
                .filter(|f| f.flow == flow)
                .map(|f| f.seq)
                .collect();
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "guest {g:?} flow {flow} reordered: {seqs:?}"
            );
        }
    }
    assert_eq!(total, 6 * 24, "every frame delivered exactly once");
    assert_eq!(sys.world.hyper.as_ref().unwrap().demux_misses, 0);
    assert_eq!(sys.machine.meter.event("domain_switch"), 0);
}

#[test]
fn roundrobin_spreads_bursts_across_all_nics() {
    let mut sys = System::build_sharded(Config::TwinDrivers, 4, ShardPolicy::RoundRobin).unwrap();
    // Eight bursts rotate over four devices: two bursts each.
    for _ in 0..8 {
        assert_eq!(sys.transmit_burst(16).unwrap(), 16);
    }
    for dev in 0..4 {
        let stats = sys.world.nics[dev].stats();
        assert_eq!(
            stats.tx_packets, 32,
            "device {dev} carried exactly its rotation share"
        );
        // Each device kicked once per burst it carried (one doorbell →
        // one TXDW latch per kick).
        assert_eq!(stats.tx_irqs, 2, "device {dev}");
    }
    // Wire order within each device is strict; the union is a complete
    // permutation of the injected sequence numbers.
    let mut all: Vec<u64> = Vec::new();
    for nic in &mut sys.world.nics {
        let frames = nic.take_tx_frames();
        assert!(frames.windows(2).all(|w| w[0].seq < w[1].seq));
        all.extend(frames.iter().map(|f| f.seq));
    }
    all.sort_unstable();
    assert_eq!(all, (0..128).collect::<Vec<u64>>());
}

#[test]
fn receive_shards_round_robin_with_per_device_interrupts() {
    let mut sys = System::build_sharded(Config::TwinDrivers, 4, ShardPolicy::RoundRobin).unwrap();
    sys.machine.meter.reset();
    // Four bursts land on four different NICs, one coalesced interrupt
    // each; all reach the single guest in order within each burst.
    for b in 0..4u64 {
        let frames: Vec<Frame> = (0..8)
            .map(|i| rx_frame(MacAddr::for_guest(1), 2, b * 8 + i))
            .collect();
        assert_eq!(sys.receive_burst(&frames).unwrap(), 8);
    }
    assert_eq!(sys.delivered_rx(), 32);
    assert_eq!(sys.machine.meter.event("irq"), 4, "one irq per NIC burst");
    for dev in 0..4 {
        assert_eq!(sys.world.nics[dev].stats().rx_packets, 8, "device {dev}");
        assert_eq!(sys.world.nics[dev].stats().rx_irqs, 1, "device {dev}");
    }
}

#[test]
fn aggregate_throughput_scales_3x_from_one_to_four_nics_at_burst_32() {
    // The acceptance criterion: aggregate RX+TX throughput at burst 32
    // must scale at least 3× going from one NIC to four.
    let mut one = System::build_sharded(Config::TwinDrivers, 1, ShardPolicy::RoundRobin).unwrap();
    let a1 = measure_aggregate_throughput(&mut one, 32, 96).unwrap();
    let mut four = System::build_sharded(Config::TwinDrivers, 4, ShardPolicy::RoundRobin).unwrap();
    let a4 = measure_aggregate_throughput(&mut four, 32, 96).unwrap();
    let scaling = a4.aggregate_mbps() / a1.aggregate_mbps();
    assert!(
        scaling >= 3.0,
        "aggregate scaling only {scaling:.2}x: 1 NIC {:.0} Mb/s → 4 NICs {:.0} Mb/s",
        a1.aggregate_mbps(),
        a4.aggregate_mbps()
    );
    // One NIC is link-bound in both directions at gigabit speed.
    assert_eq!(a1.tx.mbps, 1000.0);
    assert_eq!(a1.rx.mbps, 1000.0);
    // Sharding must not wreck amortization: cycles/packet stays within
    // 25% of the single-NIC figure at the same burst size.
    assert!(a4.tx_cycles_per_packet <= a1.tx_cycles_per_packet * 1.25);
    assert!(a4.rx_cycles_per_packet <= a1.rx_cycles_per_packet * 1.25);
}

#[test]
fn flooding_guest_cannot_starve_another_guests_virq() {
    // Guest A floods the wire with 64 queued frames; guest B has two.
    // With a flush quantum of 8, B's virtual interrupt must go out in
    // the very first round — after at most one quantum of A's copies —
    // instead of after A's entire backlog.
    let opts = SystemOptions {
        rx_flush_quantum: 8,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    let g1 = sys.guest.unwrap();
    let mac2 = MacAddr::for_guest(2);
    let g2 = sys.add_guest(mac2).unwrap();

    let mut frames: Vec<Frame> = (0..64)
        .map(|i| rx_frame(MacAddr::for_guest(1), 7, i))
        .collect();
    // B's two frames arrive last, behind the flood.
    frames.push(rx_frame(mac2, 8, 0));
    frames.push(rx_frame(mac2, 8, 1));
    assert_eq!(sys.receive_burst(&frames).unwrap(), 66);

    // Everything was delivered...
    let xen = sys.world.xen.as_ref().unwrap();
    assert_eq!(xen.domain(g1).rx_delivered.len(), 64);
    assert_eq!(xen.domain(g2).rx_delivered.len(), 2);
    // ...and the flush log shows B served in round 0, while A's backlog
    // took 64/8 = 8 rounds of one quantum each.
    let b_rounds: Vec<usize> = sys
        .rx_flush_log
        .iter()
        .filter(|(_, g, _)| *g == g2)
        .map(|(round, _, _)| *round)
        .collect();
    assert_eq!(b_rounds, vec![0], "guest B's virq fired in the first round");
    let a_entries: Vec<(usize, usize)> = sys
        .rx_flush_log
        .iter()
        .filter(|(_, g, _)| *g == g1)
        .map(|(round, _, n)| (*round, *n))
        .collect();
    assert_eq!(a_entries.len(), 8, "the flood drained quantum by quantum");
    assert!(a_entries.iter().all(|(_, n)| *n == 8));
    assert!(a_entries.iter().enumerate().all(|(i, (r, _))| *r == i));
}

#[test]
fn default_quantum_leaves_single_burst_flushes_untouched() {
    // A burst no larger than the default quantum flushes in one round
    // with exactly one virq per guest — the PR 1 contract.
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    let mac2 = MacAddr::for_guest(2);
    let g2 = sys.add_guest(mac2).unwrap();
    sys.machine.meter.reset();
    let mut frames = Vec::new();
    for i in 0..12u64 {
        let mac = if i % 2 == 0 {
            MacAddr::for_guest(1)
        } else {
            mac2
        };
        frames.push(rx_frame(mac, 3, i));
    }
    assert_eq!(sys.receive_burst(&frames).unwrap(), 12);
    assert_eq!(sys.machine.meter.event("virq"), 2, "one virq per guest");
    assert!(sys.rx_flush_log.iter().all(|(round, _, _)| *round == 0));
    let xen = sys.world.xen.as_ref().unwrap();
    assert_eq!(xen.domain(g2).rx_delivered.len(), 6);
}

#[test]
fn flowhash_spreads_generated_transmit_traffic() {
    // The internal traffic generator cycles over several flows (the
    // paper's netperf runs multiple streams), so FlowHash genuinely
    // spreads transmit bursts instead of pinning everything to one NIC.
    let mut sys = System::build_sharded(Config::TwinDrivers, 4, ShardPolicy::FlowHash).unwrap();
    assert_eq!(sys.transmit_burst(64).unwrap(), 64);
    for dev in 0..4 {
        assert!(
            sys.world.nics[dev].stats().tx_packets > 0,
            "device {dev} idle under FlowHash"
        );
    }
    // Per-flow wire order holds on every device.
    for nic in &mut sys.world.nics {
        let frames = nic.take_tx_frames();
        for flow in 1..=8u32 {
            let seqs: Vec<u64> = frames
                .iter()
                .filter(|f| f.flow == flow)
                .map(|f| f.seq)
                .collect();
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "flow {flow} reordered"
            );
        }
    }
}

#[test]
fn aggregate_throughput_counts_only_active_links() {
    // Static(0) on a 4-NIC system drives one gigabit link; the
    // aggregate must be capped by that link, not by idle hardware.
    let mut sys = System::build_sharded(Config::TwinDrivers, 4, ShardPolicy::Static(0)).unwrap();
    let a = measure_aggregate_throughput(&mut sys, 32, 96).unwrap();
    assert_eq!(a.tx.mbps, 1000.0, "one active TX link");
    assert_eq!(a.rx.mbps, 1000.0, "one active RX link");
    assert!(a.aggregate_mbps() <= 2000.0);
}

#[test]
fn static_policy_pins_every_burst_to_the_chosen_nic() {
    let mut sys = System::build_sharded(Config::NativeLinux, 4, ShardPolicy::Static(2)).unwrap();
    assert_eq!(sys.transmit_burst(40).unwrap(), 40);
    for dev in 0..4 {
        let expect = if dev == 2 { 40 } else { 0 };
        assert_eq!(
            sys.world.nics[dev].stats().tx_packets,
            expect,
            "device {dev}"
        );
    }
    let frames: Vec<Frame> = (0..10)
        .map(|i| rx_frame(MacAddr::for_guest(0), 2, i))
        .collect();
    assert_eq!(sys.receive_burst(&frames).unwrap(), 10);
    assert_eq!(sys.world.nics[2].stats().rx_packets, 10);
    assert_eq!(sys.delivered_rx(), 10);
}
