//! Scheduler-aware flow affinity: the vCPU run/sleep model and the
//! `ShardPolicy::Affinity` placement it drives.
//!
//! * **scheduler-off equivalence** — with no scheduler model built,
//!   `Affinity` is *cycle-exact* with `FlowHash`: same placement, same
//!   charged cycles, same deliveries (the default-off guarantee that
//!   keeps every committed baseline bit-exact);
//! * **warm placement** — with an adversarial vCPU pinning (every
//!   guest one CPU away from its flow's hash-chosen NIC), `Affinity`
//!   eliminates the cold-delivery refill entirely while `FlowHash`
//!   pays it on every frame;
//! * **migration order** — when vCPUs migrate across CPUs, flows
//!   follow (hysteresis- and drain-gated) without ever reordering a
//!   (guest, flow) sequence;
//! * **sleep deferral** — a sleeping guest's frames are queued, not
//!   delivered, and flush at the wakeup edge the scheduler predicted;
//! * **poll-budget weighting** — a NAPI poll pass spends its budget on
//!   devices whose CPUs have runnable guests, so a sleeping guest's
//!   device takes strictly more (smaller) polls for the same backlog.

use twindrivers::measure::Breakdown;
use twindrivers::net::{EtherType, Frame, MacAddr, MTU};
use twindrivers::system::DomId;
use twindrivers::{peer_mac, Config, SchedOptions, ShardPolicy, System, SystemOptions};

const NICS: usize = 4;
const CPUS: u32 = 4;

fn rx_frame(dst: MacAddr, flow: u32, seq: u64) -> Frame {
    Frame {
        dst,
        src: peer_mac(),
        ethertype: EtherType::Ipv4,
        payload_len: MTU,
        flow,
        seq,
    }
}

fn hash_dev(flow: u32) -> u32 {
    (flow.wrapping_mul(2_654_435_761) >> 16) % NICS as u32
}

/// A flow whose hash lands on `dev`, scanning up from `base`.
fn flow_for(dev: u32, base: u32) -> u32 {
    (base..).find(|&f| hash_dev(f) == dev).unwrap()
}

fn build(shard: ShardPolicy, sched: Option<SchedOptions>) -> System {
    System::build_with(
        Config::TwinDrivers,
        &SystemOptions {
            num_nics: NICS,
            shard,
            sched,
            ..SystemOptions::default()
        },
    )
    .unwrap()
}

fn sched_opts() -> SchedOptions {
    SchedOptions {
        num_cpus: CPUS,
        ..SchedOptions::default()
    }
}

/// With the scheduler model off, `Affinity` *is* `FlowHash`: identical
/// placement and identical charged cycles on identical traffic — the
/// default-off guarantee behind every committed bit-exact baseline.
#[test]
fn affinity_without_sched_is_cycle_exact_flowhash() {
    let mut fh = build(ShardPolicy::FlowHash, None);
    let mut af = build(ShardPolicy::Affinity, None);
    let mac2 = MacAddr::for_guest(2);
    for sys in [&mut fh, &mut af] {
        sys.add_guest(mac2).unwrap();
        for k in 0..6u64 {
            assert_eq!(sys.transmit_burst(5).unwrap(), 5);
            let frames: Vec<Frame> = (0..16u32)
                .map(|i| {
                    let dst = if i % 2 == 0 {
                        MacAddr::for_guest(1)
                    } else {
                        mac2
                    };
                    rx_frame(dst, 300 + (i % 5), k * 16 + u64::from(i))
                })
                .collect();
            assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
        }
    }
    assert_eq!(
        fh.machine.meter.now(),
        af.machine.meter.now(),
        "affinity with no scheduler must charge exactly flow-hash cycles"
    );
    assert_eq!(fh.take_wire_frames(), af.take_wire_frames());
    let fxen = fh.world.xen.as_ref().unwrap();
    let axen = af.world.xen.as_ref().unwrap();
    for g in 1..3usize {
        assert_eq!(
            fxen.domains[g].rx_delivered, axen.domains[g].rx_delivered,
            "guest {g} deliveries"
        );
    }
}

/// The scheduler model is a TwinDrivers-configuration feature; the
/// unoptimised configurations must refuse it loudly.
#[test]
fn sched_requires_twindrivers_config() {
    let err = System::build_with(
        Config::XenGuest,
        &SystemOptions {
            num_nics: NICS,
            sched: Some(sched_opts()),
            ..SystemOptions::default()
        },
    );
    assert!(err.is_err(), "sched on domU must fail to build");
}

/// Adversarial pinning (each guest one CPU away from its flow's
/// hash-chosen NIC): `FlowHash` pays the cold refill on every frame,
/// `Affinity` re-places the flow on a vCPU-local NIC and pays none —
/// and says so in placements, metrics and cycles.
#[test]
fn placement_follows_vcpu_and_eliminates_cold_refills() {
    let flow = flow_for(2, 500);
    let cpu = (hash_dev(flow) + 1) % CPUS;
    let frames: Vec<Frame> = (0..24u64)
        .map(|s| rx_frame(MacAddr::for_guest(1), flow, s))
        .collect();
    let mut cold_cycles = 0;
    let mut warm_cycles = 0;
    for (shard, expect_cold) in [(ShardPolicy::FlowHash, 24), (ShardPolicy::Affinity, 0)] {
        let mut sys = build(shard, Some(sched_opts()));
        sys.sched_add_vcpu(DomId(1), cpu, 1_000_000, 0).unwrap();
        assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
        let b = Breakdown::from_meter(&sys.machine.meter, 1);
        let cold = b.events.get("cold_delivery").copied().unwrap_or(0);
        assert_eq!(cold, expect_cold, "{shard:?} cold deliveries");
        assert_eq!(sys.delivered_rx_for(DomId(1)), frames.len());
        if shard == ShardPolicy::Affinity {
            warm_cycles = sys.machine.meter.now();
            let ms = sys.metrics();
            assert_eq!(ms.counter("sched.placements"), 1, "one flow placed once");
            assert_eq!(ms.counter("sched.guest1.placements"), 1);
            assert_eq!(ms.counter("sched.guest1.cpu"), u64::from(cpu));
            assert_eq!(ms.counter("sched.guest1.running"), 1);
        } else {
            cold_cycles = sys.machine.meter.now();
        }
    }
    assert!(
        warm_cycles < cold_cycles,
        "warm placement must be cheaper: {warm_cycles} vs {cold_cycles}"
    );
}

/// vCPU migration drags flows along (hysteresis- and ring-drain-gated)
/// and never reorders a flow: every frame still arrives, in sequence.
#[test]
fn migration_preserves_per_flow_order() {
    let mut sys = build(
        ShardPolicy::Affinity,
        Some(SchedOptions {
            num_cpus: CPUS,
            migrate_period: 1,
            affinity_hysteresis: 0,
        }),
    );
    let flow = flow_for(0, 700);
    sys.sched_add_vcpu(DomId(1), 0, 100_000, 100_000).unwrap();
    let mut seq = 0u64;
    for _ in 0..12 {
        let frames: Vec<Frame> = (0..8)
            .map(|_| {
                let f = rx_frame(MacAddr::for_guest(1), flow, seq);
                seq += 1;
                f
            })
            .collect();
        assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
        // Cross at least one run/sleep period so the vCPU wakes on a
        // new CPU and the flow must follow it.
        sys.run_idle(250_000).unwrap();
    }
    let ms = sys.metrics();
    assert!(
        ms.counter("sched.migrations") >= 1,
        "the migrating vCPU must drag its flow at least once"
    );
    assert_eq!(sys.delivered_rx_for(DomId(1)), seq as usize);
    let xen = sys.world.xen.as_ref().unwrap();
    let seqs: Vec<u64> = xen.domains[1]
        .rx_delivered
        .iter()
        .filter(|f| f.flow == flow)
        .map(|f| f.seq)
        .collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "migration reordered the flow: {seqs:?}"
    );
}

/// A sleeping guest's frames park in its queue and flush exactly at
/// the wakeup edge the scheduler predicted — deferred, never dropped.
#[test]
fn sleeping_guest_defers_until_wakeup() {
    let mut sys = build(ShardPolicy::Affinity, Some(sched_opts()));
    // Runs 100k cycles, then sleeps 2M: plenty of room to land a burst
    // mid-sleep without the burst's own charges crossing the edge.
    sys.sched_add_vcpu(DomId(1), 0, 100_000, 2_000_000).unwrap();
    sys.run_idle(150_000).unwrap();
    assert!(
        !sys.sched().unwrap().is_running(1),
        "guest must be asleep after its run phase"
    );
    let frames: Vec<Frame> = (0..8u64)
        .map(|s| rx_frame(MacAddr::for_guest(1), 900, s))
        .collect();
    assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
    assert_eq!(
        sys.delivered_rx_for(DomId(1)),
        0,
        "frames for a sleeping guest must defer, not deliver"
    );
    let queued = sys.world.xen.as_ref().unwrap().domains[1].rx_queue.len();
    assert_eq!(queued, frames.len(), "deferred frames parked in the queue");
    let wake = sys.sched().unwrap().next_wakeup(1).expect("wakeup armed");
    let now = sys.machine.meter.now();
    assert!(wake > now, "wakeup is in the future");
    sys.run_idle(wake - now + 50_000).unwrap();
    assert_eq!(
        sys.delivered_rx_for(DomId(1)),
        frames.len(),
        "the wakeup edge flushes the deferred backlog"
    );
    assert!(sys.world.xen.as_ref().unwrap().domains[1]
        .rx_queue
        .is_empty());
}

/// NAPI budgets follow the scheduler: the same ring backlog takes
/// strictly more poll passes when the device's CPU has only sleeping
/// guests, because each pass's reap budget is cut to a quarter.
#[test]
fn poll_budget_weights_toward_running_guests() {
    let flow = flow_for(0, 800); // NIC 0 → softirq CPU 0
    let mut polls = Vec::new();
    for running in [true, false] {
        let mut sys = System::build_with(
            Config::TwinDrivers,
            &SystemOptions {
                num_nics: NICS,
                shard: ShardPolicy::FlowHash,
                napi_weight: 8,
                sched: Some(sched_opts()),
                ..SystemOptions::default()
            },
        )
        .unwrap();
        // Degenerate schedules: always running vs always sleeping, so
        // the only difference between the two runs is the poll budget.
        let (run, sleep) = if running {
            (1_000_000, 0)
        } else {
            (0, 1_000_000)
        };
        sys.sched_add_vcpu(DomId(1), 0, run, sleep).unwrap();
        let frames: Vec<Frame> = (0..32u64)
            .map(|s| rx_frame(MacAddr::for_guest(1), flow, s))
            .collect();
        assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
        sys.run_idle(500_000).unwrap();
        let b = Breakdown::from_meter(&sys.machine.meter, 1);
        polls.push(b.events.get("napi_poll").copied().unwrap_or(0));
    }
    assert!(
        polls[1] > polls[0],
        "a sleeping guest's device must take more, smaller polls: {polls:?}"
    );
}
