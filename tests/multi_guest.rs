//! Multi-guest receive demultiplexing (paper §5.3): "the hypervisor
//! demultiplexes the received packets based on the destination MAC
//! address, and queues the packet to the appropriate guest domain."

use twin_net::{EtherType, Frame, MacAddr, MTU};
use twindrivers::{peer_mac, Config, System};

fn frame_for(dst: MacAddr, seq: u64) -> Frame {
    Frame {
        dst,
        src: peer_mac(),
        ethertype: EtherType::Ipv4,
        payload_len: MTU,
        flow: 9,
        seq,
    }
}

#[test]
fn frames_reach_the_right_guest() {
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    let g1 = sys.guest.unwrap();
    let mac2 = MacAddr::for_guest(2);
    let mac3 = MacAddr::for_guest(3);
    let g2 = sys.add_guest(mac2).unwrap();
    let g3 = sys.add_guest(mac3).unwrap();

    // Interleave frames for three guests plus one for an unknown MAC.
    for i in 0..12u64 {
        let dst = match i % 3 {
            0 => MacAddr::for_guest(1),
            1 => mac2,
            _ => mac3,
        };
        sys.receive_frame(&frame_for(dst, i)).unwrap();
    }
    sys.receive_frame(&frame_for(MacAddr::for_guest(77), 99))
        .unwrap();

    let xen = sys.world.xen.as_ref().unwrap();
    assert_eq!(xen.domain(g1).rx_delivered.len(), 4);
    assert_eq!(xen.domain(g2).rx_delivered.len(), 4);
    assert_eq!(xen.domain(g3).rx_delivered.len(), 4);
    // Sequence numbers landed with the right owner.
    assert!(xen.domain(g2).rx_delivered.iter().all(|f| f.seq % 3 == 1));
    assert!(xen.domain(g3).rx_delivered.iter().all(|f| f.dst == mac3));
    // The unknown destination was dropped and counted.
    assert_eq!(sys.world.hyper.as_ref().unwrap().demux_misses, 1);
    // Still zero domain switches: demux happens in the hypervisor.
    assert_eq!(sys.machine.meter.event("domain_switch"), 0);
}

#[test]
fn broadcast_goes_nowhere_but_counts() {
    // The model demuxes unicast only; broadcasts are counted as misses
    // (the paper's prototype had a single guest per MAC as well).
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    sys.receive_frame(&frame_for(MacAddr::BROADCAST, 0))
        .unwrap();
    assert_eq!(sys.world.hyper.as_ref().unwrap().demux_misses, 1);
    assert_eq!(sys.delivered_rx(), 0);
}

#[test]
fn batch_demux_fans_out_to_guests_in_one_pass() {
    // One coalesced interrupt, one softirq pass, one demux sweep: a
    // twelve-frame burst for three guests lands in all three queues with
    // a single hardware interrupt and one virtual interrupt per guest.
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    let g1 = sys.guest.unwrap();
    let mac2 = MacAddr::for_guest(2);
    let mac3 = MacAddr::for_guest(3);
    let g2 = sys.add_guest(mac2).unwrap();
    let g3 = sys.add_guest(mac3).unwrap();

    sys.machine.meter.reset();
    let frames: Vec<Frame> = (0..12u64)
        .map(|i| {
            let dst = match i % 3 {
                0 => MacAddr::for_guest(1),
                1 => mac2,
                _ => mac3,
            };
            frame_for(dst, i)
        })
        .collect();
    assert_eq!(sys.receive_burst(&frames).unwrap(), 12);

    assert_eq!(sys.machine.meter.event("irq"), 1, "one coalesced interrupt");
    assert_eq!(sys.machine.meter.event("virq"), 3, "one virq per guest");
    assert_eq!(sys.machine.meter.event("domain_switch"), 0);
    let xen = sys.world.xen.as_ref().unwrap();
    for (g, mac) in [(g1, MacAddr::for_guest(1)), (g2, mac2), (g3, mac3)] {
        let delivered = &xen.domain(g).rx_delivered;
        assert_eq!(delivered.len(), 4);
        assert!(delivered.iter().all(|f| f.dst == mac));
        // Order within each guest preserved.
        for w in delivered.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }
}

#[test]
fn guests_transmit_interleaved_with_demuxed_receive() {
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    let mac2 = MacAddr::for_guest(2);
    let g2 = sys.add_guest(mac2).unwrap();
    for i in 0..10u64 {
        sys.transmit_one().unwrap();
        sys.receive_frame(&frame_for(mac2, i)).unwrap();
    }
    assert_eq!(sys.take_wire_frames().len(), 10);
    let xen = sys.world.xen.as_ref().unwrap();
    assert_eq!(xen.domain(g2).rx_delivered.len(), 10);
}
