//! The virtual-time engine end to end: ITR moderation (latched-pending
//! delivery, no regression when off, the latency/throughput acceptance
//! point) and the deadline-driven upcall flush on an idle system.

use twin_net::{EtherType, Frame, MacAddr, MTU};
use twindrivers::measure::upcall_latency;
use twindrivers::{
    measure_aggregate_throughput, peer_mac, Config, ShardPolicy, System, SystemOptions, UpcallMode,
};

/// One committed shard-baseline point: `(nics, burst, tx_cpp, rx_cpp)`.
fn parse_shard_baseline() -> (u64, Vec<(usize, usize, f64, f64)>) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench/baseline.json");
    let text = std::fs::read_to_string(path).expect("bench/baseline.json");
    let field = |line: &str, name: &str| -> f64 {
        let key = format!("\"{name}\": ");
        let i = line
            .find(&key)
            .unwrap_or_else(|| panic!("{name} in {line}"))
            + key.len();
        let rest = &line[i..];
        let end = rest.find([',', '}']).expect("field terminator");
        rest[..end].trim().parse().expect("numeric field")
    };
    let mut packets = 0u64;
    let mut points = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"packets\"") {
            packets = field(&format!("{{{line}"), "packets") as u64;
        }
        if line.starts_with('{') && line.contains("\"nics\"") {
            points.push((
                field(line, "nics") as usize,
                field(line, "burst") as usize,
                field(line, "tx_cycles_per_packet"),
                field(line, "rx_cycles_per_packet"),
            ));
        }
    }
    (packets, points)
}

#[test]
fn itr_zero_no_deadline_is_cycle_exact_with_the_shard_baseline() {
    // The virtual-time engine must be invisible when its knobs are off:
    // every point of the committed PR 2/PR 3 shard baseline reproduces
    // to the decimal with the clock, the timer wheel, the moderation
    // hooks and the deadline checks all in place (ITR 0, no deadline —
    // the defaults).
    let (packets, points) = parse_shard_baseline();
    assert_eq!(packets, 64, "baseline was generated at 64 packets/point");
    assert_eq!(points.len(), 12, "full shard baseline");
    for (nics, burst, tx_cpp, rx_cpp) in points {
        let mut sys =
            System::build_sharded(Config::TwinDrivers, nics, ShardPolicy::RoundRobin).unwrap();
        let a = measure_aggregate_throughput(&mut sys, burst, packets).unwrap();
        // The baseline stores one decimal place; anything beyond rounding
        // error is a real cycle deviation.
        assert!(
            (a.tx_cycles_per_packet - tx_cpp).abs() <= 0.051,
            "nics {nics} burst {burst}: tx {:.1} vs baseline {tx_cpp:.1}",
            a.tx_cycles_per_packet
        );
        assert!(
            (a.rx_cycles_per_packet - rx_cpp).abs() <= 0.051,
            "nics {nics} burst {burst}: rx {:.1} vs baseline {rx_cpp:.1}",
            a.rx_cycles_per_packet
        );
        assert_eq!(sys.machine.meter.event("irq_moderated"), 0);
        assert_eq!(sys.machine.meter.event("upcall_flush"), 0);
    }
}

#[test]
fn moderation_latches_pending_work_and_never_drops_or_reorders() {
    // Random-ish traffic to three guests over six flows across four
    // FlowHash-sharded NICs, with every device's ITR window closed most
    // of the time: deliveries are delayed (latched), never lost, and
    // every (guest, flow) subsequence stays in order.
    let opts = SystemOptions {
        num_nics: 4,
        shard: ShardPolicy::FlowHash,
        itr: 1500, // 1.152M-cycle windows: most bursts land inside one
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    let g1 = sys.guest.unwrap();
    let mac2 = MacAddr::for_guest(2);
    let mac3 = MacAddr::for_guest(3);
    let g2 = sys.add_guest(mac2).unwrap();
    let g3 = sys.add_guest(mac3).unwrap();
    let macs = [MacAddr::for_guest(1), mac2, mac3];

    let mut seqs = [0u64; 6];
    let mut injected = [0usize; 3];
    for round in 0..6u32 {
        let frames: Vec<Frame> = (0..24u32)
            .map(|i| {
                let flow = (round + i) % 6;
                let guest = (flow % 3) as usize;
                injected[guest] += 1;
                let f = Frame {
                    dst: macs[guest],
                    src: peer_mac(),
                    ethertype: EtherType::Ipv4,
                    payload_len: MTU,
                    flow: 20 + flow,
                    seq: seqs[flow as usize],
                };
                seqs[flow as usize] += 1;
                f
            })
            .collect();
        assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
        // A little idle between bursts; windows open on their own time.
        sys.run_idle(60_000).unwrap();
    }
    assert!(
        sys.machine.meter.event("irq_moderated") > 0,
        "the windows actually gated deliveries"
    );
    // Open every window and deliver the latched tail.
    sys.drain_moderated().unwrap();

    let missed: u64 = sys.world.nics.iter().map(|n| n.stats().rx_missed).sum();
    assert_eq!(missed, 0, "moderation must delay, never drop");
    let xen = sys.world.xen.as_ref().unwrap();
    for (gi, (g, mac)) in [(g1, macs[0]), (g2, mac2), (g3, mac3)]
        .into_iter()
        .enumerate()
    {
        let delivered = &xen.domain(g).rx_delivered;
        assert_eq!(delivered.len(), injected[gi], "guest {gi} count");
        assert!(delivered.iter().all(|f| f.dst == mac), "cross-delivery");
        for flow in 20..26u32 {
            let s: Vec<u64> = delivered
                .iter()
                .filter(|f| f.flow == flow)
                .map(|f| f.seq)
                .collect();
            assert!(
                s.windows(2).all(|w| w[0] < w[1]),
                "flow {flow} reordered: {s:?}"
            );
        }
    }
}

#[test]
fn moderation_acceptance_point_at_burst32_on_four_nics() {
    // The headline trade-off: some ITR > 0 cuts interrupts/packet at
    // least 4x against ITR 0 while p99 arrival-to-delivery latency stays
    // within 2x — under the same paced arrival process the
    // moderation_sweep bench uses.
    let measure = |itr: u32| {
        let opts = SystemOptions {
            num_nics: 4,
            shard: ShardPolicy::FlowHash,
            itr,
            ..SystemOptions::default()
        };
        let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
        sys.measure_rx_moderated(32, 384, 150_000).unwrap()
    };
    let base = measure(0);
    let moderated = measure(2000);
    let irq_reduction = base.irqs_per_packet / moderated.irqs_per_packet.max(1e-9);
    assert!(
        irq_reduction >= 4.0,
        "irqs/pkt only {irq_reduction:.2}x better ({:.3} vs {:.3})",
        base.irqs_per_packet,
        moderated.irqs_per_packet
    );
    let p99_ratio = moderated.latency.p99 as f64 / base.latency.p99.max(1) as f64;
    assert!(
        p99_ratio <= 2.0,
        "p99 blew past 2x: {} vs {} ({p99_ratio:.2}x)",
        moderated.latency.p99,
        base.latency.p99
    );
    // Both runs moved every frame.
    assert_eq!(base.packets, 384);
    assert_eq!(moderated.packets, 384);
    assert!(moderated.moderated_irqs > 0);
}

#[test]
fn idle_deadline_bounds_upcall_completion_latency() {
    // Queued deferred upcalls on an otherwise idle system: the deadline
    // timer armed at first enqueue must flush them, so p99
    // cycles-to-completion is bounded by deadline + flush overhead.
    const DEADLINE: u64 = 100_000;
    let opts = SystemOptions {
        upcall_mode: UpcallMode::Deferred,
        upcall_count: 9,
        upcall_flush_deadline_cycles: Some(DEADLINE),
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    {
        let twindrivers::system::World {
            kernel, xen, hyper, ..
        } = &mut sys.world;
        let hs = hyper.as_mut().unwrap();
        hs.engine.clear_latency();
        let xen = xen.as_mut().unwrap();
        for i in 0..4u32 {
            hs.enqueue_upcall(
                "dma_unmap_single",
                vec![0x1000 * i, 64],
                &mut sys.machine,
                kernel,
                xen,
            )
            .unwrap();
        }
        assert!(hs.engine.flush_due_at().is_some(), "deadline armed");
    }
    let flushes_before = sys.world.hyper.as_ref().unwrap().engine.stats.flushes;
    // No traffic, no burst-pass flush points: only the deadline fires.
    sys.run_idle(4 * DEADLINE).unwrap();
    let hs = sys.world.hyper.as_ref().unwrap();
    assert_eq!(hs.engine.depth(), 0, "deadline drained the ring");
    assert!(hs.engine.stats.flushes > flushes_before);
    assert!(hs.engine.flush_due_at().is_none(), "disarmed after flush");
    let lat = upcall_latency(&sys);
    assert_eq!(lat.samples, 4);
    // Flush work for 4 entries: flush overhead + two switches + virq +
    // hypercall + per-entry dispatch/routine/complete — well under 20k.
    assert!(
        lat.p99 <= DEADLINE + 20_000,
        "p99 {} exceeds deadline {DEADLINE} + flush overhead",
        lat.p99
    );
    assert!(
        lat.p50 >= DEADLINE / 2,
        "p50 {} — the flush fired long before the deadline?",
        lat.p50
    );
}

#[test]
fn deadline_flush_runs_before_a_simultaneously_due_moderated_irq() {
    // Flush-before-IRQ ordering: when the upcall deadline and a
    // moderated delivery are both due at the same service point, the
    // queued upcalls drain first — the marker entry's completion latency
    // shows no receive-pass work in front of it.
    const DEADLINE: u64 = 200_000;
    let opts = SystemOptions {
        upcall_mode: UpcallMode::Deferred,
        upcall_count: 9,
        upcall_flush_deadline_cycles: Some(DEADLINE),
        itr: 500, // 384k-cycle windows
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    // First burst anchors device 0's moderation window…
    let mk = |seq: u64| Frame {
        dst: MacAddr::for_guest(1),
        src: peer_mac(),
        ethertype: EtherType::Ipv4,
        payload_len: MTU,
        flow: 5,
        seq,
    };
    sys.receive_burst(&[mk(0), mk(1)]).unwrap();
    // …and a 16-frame burst latches behind it: reaping it costs
    // hundreds of thousands of cycles, so running it ahead of the flush
    // would be unmistakable in the marker's latency.
    let latched: Vec<Frame> = (2..18).map(mk).collect();
    sys.receive_burst(&latched).unwrap();
    assert!(sys.machine.meter.event("irq_moderated") > 0);
    // Arm the deadline with a marker upcall, then jump time past BOTH
    // events in one step so a single service call sees them together.
    {
        let twindrivers::system::World {
            kernel, xen, hyper, ..
        } = &mut sys.world;
        let hs = hyper.as_mut().unwrap();
        hs.engine.clear_latency();
        let xen = xen.as_mut().unwrap();
        hs.enqueue_upcall(
            "dma_unmap_single",
            vec![0x40, 64],
            &mut sys.machine,
            kernel,
            xen,
        )
        .unwrap();
    }
    let horizon = sys.world.nics[0].itr_cycles().max(DEADLINE) + 1_000;
    sys.machine.meter.advance_idle(horizon);
    sys.service_virtual_timers(false).unwrap();
    // The marker completed; its latency is the idle jump plus flush
    // work only. Had the receive pass run first, its reap and demux
    // cycles (hundreds of thousands for 16 frames) would sit in front.
    let lat = sys.upcall_latency_samples()[0];
    assert!(
        lat <= horizon + 20_000,
        "marker latency {lat} includes more than flush work (horizon {horizon})"
    );
    // And the moderated delivery did happen in the same service call.
    assert_eq!(sys.delivered_rx(), 18, "latched frames delivered");
}
