//! The zero-copy grant-mapped datapath end to end: off-mode stays
//! cycle-exact with the committed shard baseline, a warm pool pays no
//! per-packet grant traffic, every fallback trigger bounces through the
//! copy path, revocation quarantines cached grants, and the aggregate
//! sweep attributes grant work per device.

use twin_net::{EtherType, Frame, MacAddr, MTU};
use twindrivers::{
    measure_aggregate_throughput, peer_mac, Config, ShardPolicy, System, SystemOptions,
};

fn zc_opts(nics: usize, zero_copy: bool) -> SystemOptions {
    SystemOptions {
        num_nics: nics,
        shard: ShardPolicy::FlowHash,
        zero_copy,
        ..SystemOptions::default()
    }
}

fn frame_to(mac: MacAddr, flow: u32, seq: u64) -> Frame {
    Frame {
        dst: mac,
        src: peer_mac(),
        ethertype: EtherType::Ipv4,
        payload_len: MTU,
        flow,
        seq,
    }
}

/// One committed shard-baseline point: `(nics, burst, tx_cpp, rx_cpp)`.
fn parse_shard_baseline() -> (u64, Vec<(usize, usize, f64, f64)>) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench/baseline.json");
    let text = std::fs::read_to_string(path).expect("bench/baseline.json");
    let field = |line: &str, name: &str| -> f64 {
        let key = format!("\"{name}\": ");
        let i = line
            .find(&key)
            .unwrap_or_else(|| panic!("{name} in {line}"))
            + key.len();
        let rest = &line[i..];
        let end = rest.find([',', '}']).expect("field terminator");
        rest[..end].trim().parse().expect("numeric field")
    };
    let mut packets = 0u64;
    let mut points = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"packets\"") {
            packets = field(&format!("{{{line}"), "packets") as u64;
        }
        if line.starts_with('{') && line.contains("\"nics\"") {
            points.push((
                field(line, "nics") as usize,
                field(line, "burst") as usize,
                field(line, "tx_cycles_per_packet"),
                field(line, "rx_cycles_per_packet"),
            ));
        }
    }
    (packets, points)
}

#[test]
fn zero_copy_off_is_cycle_exact_with_the_shard_baseline() {
    // The knob must be invisible when off: with the grant cache, the
    // pool plumbing and the fallback accounting all compiled in, an
    // explicit `zero_copy: false` build reproduces the committed PR 2/3
    // shard baseline to the decimal.
    let (packets, points) = parse_shard_baseline();
    assert_eq!(packets, 64, "baseline was generated at 64 packets/point");
    for (nics, burst, tx_cpp, rx_cpp) in points
        .into_iter()
        .filter(|&(n, b, _, _)| b == 32 && (n == 1 || n == 4))
    {
        let opts = SystemOptions {
            num_nics: nics,
            shard: ShardPolicy::RoundRobin,
            zero_copy: false,
            ..SystemOptions::default()
        };
        let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
        let a = measure_aggregate_throughput(&mut sys, burst, packets).unwrap();
        assert!(
            (a.tx_cycles_per_packet - tx_cpp).abs() <= 0.051,
            "nics {nics} burst {burst}: tx {:.1} vs baseline {tx_cpp:.1}",
            a.tx_cycles_per_packet
        );
        assert!(
            (a.rx_cycles_per_packet - rx_cpp).abs() <= 0.051,
            "nics {nics} burst {burst}: rx {:.1} vs baseline {rx_cpp:.1}",
            a.rx_cycles_per_packet
        );
        assert!(sys.grant_cache_stats().is_none(), "no cache when off");
        assert_eq!(sys.machine.meter.event("grant_cache_hit"), 0);
        assert_eq!(sys.machine.meter.event("copy_fallback"), 0);
    }
}

#[test]
fn warm_pool_pays_no_per_packet_grant_traffic_and_beats_copy_mode() {
    // After a priming pass at the target burst, the measured RX window
    // must be all cache hits: zero maps, zero unmaps, zero fallbacks —
    // and the amortized cost must beat copy mode by the acceptance
    // margin (≥ 1.3× at 4 NICs / burst 32).
    let mut on = System::build_with(Config::TwinDrivers, &zc_opts(4, true)).unwrap();
    on.measure_rx_burst(32, 64).unwrap();
    let w = on.measure_rx_burst(32, 64).unwrap();
    assert_eq!(w.breakdown.events.get("grant_map"), None, "warm: no maps");
    assert_eq!(w.breakdown.events.get("grant_unmap"), None);
    assert_eq!(w.breakdown.events.get("copy_fallback"), None);
    assert!(
        w.breakdown
            .events
            .get("grant_cache_hit")
            .copied()
            .unwrap_or(0)
            >= 64,
        "every measured packet lands through the cache"
    );
    let stats = on.grant_cache_stats().unwrap();
    assert!(stats.misses > 0, "the priming pass faulted the pool in");
    assert_eq!(stats.evictions, 0, "pool fits the cache");

    let mut off = System::build_with(Config::TwinDrivers, &zc_opts(4, false)).unwrap();
    off.measure_rx_burst(32, 64).unwrap();
    let wo = off.measure_rx_burst(32, 64).unwrap();
    let ratio = wo.breakdown.total() / w.breakdown.total();
    assert!(
        ratio >= 1.3,
        "zero-copy RX speedup {ratio:.2}x below the 1.3x acceptance"
    );
}

#[test]
fn ungranted_guest_falls_back_to_copies_until_granted() {
    let mut sys = System::build_with(Config::TwinDrivers, &zc_opts(1, true)).unwrap();
    let mac2 = MacAddr::for_guest(2);
    let g2 = sys.add_guest(mac2).unwrap();
    for seq in 0..8 {
        sys.receive_frame(&frame_to(mac2, 40, seq)).unwrap();
    }
    let fallbacks = sys.machine.meter.event("copy_fallback");
    assert_eq!(fallbacks, 8, "every frame to the ungranted guest bounces");

    // Granting the pool stops the fallbacks: first touch maps, the rest
    // hit.
    assert_eq!(sys.grant_zero_copy_pool(g2).unwrap(), 64, "pool granted");
    for seq in 8..16 {
        sys.receive_frame(&frame_to(mac2, 40, seq)).unwrap();
    }
    assert_eq!(
        sys.machine.meter.event("copy_fallback"),
        fallbacks,
        "granted guest takes the zero-copy path"
    );
    assert!(sys.machine.meter.event("grant_cache_hit") > 0);
}

#[test]
fn exhausted_pool_slice_falls_back() {
    // A one-frame pool: the first frame of a flow in a flush lands
    // zero-copy, everything behind it in the same pass bounces.
    let opts = SystemOptions {
        zero_copy_pool_frames: 1,
        ..zc_opts(1, true)
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    let mac1 = MacAddr::for_guest(1);
    let burst: Vec<Frame> = (0..6).map(|s| frame_to(mac1, 41, s)).collect();
    assert_eq!(sys.receive_burst(&burst).unwrap(), 6);
    assert_eq!(sys.machine.meter.event("pin_page"), 1, "slot 0 maps once");
    assert_eq!(
        sys.machine.meter.event("copy_fallback"),
        5,
        "slots past the pool bounce"
    );
}

#[test]
fn revocation_quarantines_cached_grants() {
    let mut sys = System::build_with(Config::TwinDrivers, &zc_opts(1, true)).unwrap();
    let gid = sys.guest.unwrap();
    let mac1 = MacAddr::for_guest(1);
    for seq in 0..4 {
        sys.receive_frame(&frame_to(mac1, 42, seq)).unwrap();
    }
    assert!(sys.grant_cache_stats().unwrap().misses > 0, "pool warmed");
    let unmaps_before = sys.machine.meter.event("grant_unmap");
    let revoked = sys.revoke_zero_copy_grants(gid);
    assert!(revoked > 0, "live mappings were torn down");
    assert_eq!(sys.grant_cache_stats().unwrap().revoked as usize, revoked);
    assert_eq!(
        sys.machine.meter.event("grant_unmap") - unmaps_before,
        revoked as u64,
        "each revoked mapping owes one unmap"
    );
    // The quarantined guest bounces through copies until re-granted.
    sys.receive_frame(&frame_to(mac1, 42, 4)).unwrap();
    assert!(sys.machine.meter.event("copy_fallback") > 0);
    sys.grant_zero_copy_pool(gid).unwrap();
    let fallbacks = sys.machine.meter.event("copy_fallback");
    sys.receive_frame(&frame_to(mac1, 42, 5)).unwrap();
    assert_eq!(
        sys.machine.meter.event("copy_fallback"),
        fallbacks,
        "re-granting restores the zero-copy path"
    );
}

#[test]
fn aggregate_throughput_attributes_grant_work_per_device() {
    // TwinDrivers in copy mode: grant-copies happen per packet and the
    // sweep's stats break them down per NIC.
    let mut sys = System::build_with(Config::TwinDrivers, &zc_opts(4, false)).unwrap();
    let a = measure_aggregate_throughput(&mut sys, 8, 64).unwrap();
    assert!(a.grants.copies > 0, "copy mode grant-copies every packet");
    let per_dev: u64 = a.grants.per_device.values().map(|d| d.copies).sum();
    assert_eq!(per_dev, a.grants.copies, "per-device copies sum to total");
    assert!(
        a.grants.per_device.len() >= 2,
        "flow-hash sharding spreads grant work over the NICs"
    );

    // Baseline Xen guest: the I/O channel maps and unmaps per packet,
    // attributed to the single device.
    let mut xg = System::build(Config::XenGuest).unwrap();
    let a = measure_aggregate_throughput(&mut xg, 8, 64).unwrap();
    assert!(a.grants.maps > 0 && a.grants.unmaps > 0);
    assert_eq!(a.grants.device(0).maps, a.grants.maps);
    assert_eq!(a.grants.device(0).unmaps, a.grants.unmaps);
}

#[test]
fn iommu_pre_pins_the_pool_and_traffic_still_flows() {
    let opts = SystemOptions {
        iommu: true,
        ..zc_opts(1, true)
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    let io = sys.world.iommu.as_ref().unwrap();
    assert_eq!(io.pinned_pages, 64, "whole pool pinned up front");
    assert!(
        io.allowlist_entries() < 32,
        "pool pins as coalesced ranges, not per-page entries"
    );
    // Doorbell-time RX/TX walks pass with the pool pinned.
    let mac1 = MacAddr::for_guest(1);
    let burst: Vec<Frame> = (0..8).map(|s| frame_to(mac1, 43, s)).collect();
    assert_eq!(sys.receive_burst(&burst).unwrap(), 8);
    assert_eq!(sys.transmit_burst(8).unwrap(), 8);
    assert_eq!(sys.world.iommu.as_ref().unwrap().blocked, 0);
}
