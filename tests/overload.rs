//! The overload-control subsystem end to end: NAPI-style poll-mode
//! precedence over the ITR moderation latch, loss-free and order-safe
//! mode switches, DRR weight proportionality, early drop at admission,
//! and cycle-identity of the off-knob defaults.

use twin_net::{EtherType, Frame, MacAddr, MTU};
use twindrivers::{peer_mac, Config, ShardPolicy, System, SystemOptions};

fn mk(dst: MacAddr, flow: u32, seq: u64) -> Frame {
    Frame {
        dst,
        src: peer_mac(),
        ethertype: EtherType::Ipv4,
        payload_len: MTU,
        flow,
        seq,
    }
}

#[test]
fn poll_mode_takes_precedence_over_the_moderation_latch() {
    // A NAPI system with a long ITR window: the first arrival's
    // interrupt acks-and-masks into poll mode, and while the device is
    // polled the moderation latch never engages — subsequent arrivals
    // are absorbed by the masked ring, not deferred behind the window.
    // Only after the poll pass re-arms does the ITR latch take over
    // again, and the moderated delivery (PR 4's latched cause + PR 5's
    // gated-wait bookkeeping) composes with a fresh poll-mode entry.
    let opts = SystemOptions {
        num_nics: 1,
        itr: 1500, // 1.152M-cycle windows
        napi_weight: 8,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    let g1 = sys.guest.unwrap();
    let mac = MacAddr::for_guest(1);

    // Arrival 1: interrupt allowed (window unanchored) → poll mode.
    let a: Vec<Frame> = (0..4).map(|s| mk(mac, 9, s)).collect();
    let now = sys.now_cycles();
    sys.rx_open_loop_arrival(&a, now).unwrap();
    assert!(sys.in_poll_mode(0), "first irq enters poll mode");
    assert!(sys.world.nics[0].rx_irq_masked(), "IMC masked the device");
    assert_eq!(sys.machine.meter.event("napi_enter"), 1);

    // Arrival 2, window closed: poll mode wins over the latch — the
    // frames land in the masked ring and nothing is moderated.
    let b: Vec<Frame> = (4..8).map(|s| mk(mac, 9, s)).collect();
    let now = sys.now_cycles();
    sys.rx_open_loop_arrival(&b, now).unwrap();
    assert_eq!(
        sys.machine.meter.event("irq_moderated"),
        0,
        "the latch must not engage while the device is polled"
    );

    // Service: budgeted passes drain both arrivals, then re-arm.
    let until = sys.now_cycles() + 600_000;
    sys.rx_open_loop_service(until).unwrap();
    assert_eq!(sys.delivered_rx(), 8);
    assert!(!sys.in_poll_mode(0), "drained below weight re-arms");
    assert!(!sys.world.nics[0].rx_irq_masked());
    assert_eq!(sys.machine.meter.event("napi_exit"), 1);

    // Arrival 3, still inside the ITR window, poll mode off: now the
    // moderation latch governs again.
    let c: Vec<Frame> = (8..12).map(|s| mk(mac, 9, s)).collect();
    let now = sys.now_cycles();
    sys.rx_open_loop_arrival(&c, now).unwrap();
    assert!(sys.machine.meter.event("irq_moderated") >= 1);
    assert_eq!(sys.delivered_rx(), 8, "latched, not delivered");

    // The window opens: the moderated delivery is an ack-and-mask on a
    // NAPI system — a second poll-mode episode, then everything is out.
    sys.drain_moderated().unwrap();
    assert_eq!(sys.delivered_rx(), 12);
    assert_eq!(sys.machine.meter.event("napi_enter"), 2);
    assert_eq!(sys.machine.meter.event("napi_exit"), 2);
    assert!(!sys.in_poll_mode(0));

    // Nothing lost, nothing reordered across the four mode switches.
    assert_eq!(sys.world.nics[0].stats().rx_missed, 0);
    let delivered = &sys.world.xen.as_ref().unwrap().domain(g1).rx_delivered;
    let seqs: Vec<u64> = delivered.iter().map(|f| f.seq).collect();
    assert_eq!(seqs, (0..12).collect::<Vec<u64>>());
}

#[test]
fn napi_absorbs_a_burst_larger_than_the_ring_without_loss() {
    // PR 4's packets-waiting override kept a wedged moderated ring
    // alive by forcing the latched interrupt; in poll mode there is no
    // interrupt to force — the closed-loop accept path must instead
    // keep polling between ring refills. A burst larger than the
    // 127-descriptor ring drains completely, in order.
    let opts = SystemOptions {
        num_nics: 1,
        napi_weight: 8,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    let g1 = sys.guest.unwrap();
    let frames: Vec<Frame> = (0..150).map(|s| mk(MacAddr::for_guest(1), 3, s)).collect();
    // (rx_missed counts each wire re-offer of the over-ring tail; what
    // matters here is that every frame ultimately lands, in order.)
    assert_eq!(sys.receive_burst(&frames).unwrap(), 150);
    assert_eq!(sys.delivered_rx(), 150);
    let delivered = &sys.world.xen.as_ref().unwrap().domain(g1).rx_delivered;
    let seqs: Vec<u64> = delivered.iter().map(|f| f.seq).collect();
    assert_eq!(seqs, (0..150).collect::<Vec<u64>>());
}

#[test]
fn mode_switches_under_churn_never_drop_or_reorder() {
    // Six rounds of multi-guest, multi-flow traffic over FlowHash
    // sharding with both overload knobs live (NAPI weight + long ITR
    // windows) and idle gaps that let devices oscillate between poll
    // mode, moderation and re-armed interrupts: every frame arrives,
    // every (guest, flow) subsequence stays ordered.
    let opts = SystemOptions {
        num_nics: 4,
        shard: ShardPolicy::FlowHash,
        itr: 1500,
        napi_weight: 4,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    let g1 = sys.guest.unwrap();
    let mac2 = MacAddr::for_guest(2);
    let mac3 = MacAddr::for_guest(3);
    let g2 = sys.add_guest(mac2).unwrap();
    let g3 = sys.add_guest(mac3).unwrap();
    let macs = [MacAddr::for_guest(1), mac2, mac3];

    let mut seqs = [0u64; 6];
    let mut injected = [0usize; 3];
    for round in 0..6u32 {
        let frames: Vec<Frame> = (0..24u32)
            .map(|i| {
                let flow = (round + i) % 6;
                let guest = (flow % 3) as usize;
                injected[guest] += 1;
                let f = mk(macs[guest], 20 + flow, seqs[flow as usize]);
                seqs[flow as usize] += 1;
                f
            })
            .collect();
        assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
        sys.run_idle(60_000).unwrap();
    }
    assert!(
        sys.machine.meter.event("napi_enter") > 0,
        "poll mode was actually exercised"
    );
    sys.drain_moderated().unwrap();

    let missed: u64 = sys.world.nics.iter().map(|n| n.stats().rx_missed).sum();
    assert_eq!(missed, 0, "overload control must not drop here");
    assert_eq!(sys.rx_queue_drops(), 0);
    let xen = sys.world.xen.as_ref().unwrap();
    for (gi, (g, mac)) in [(g1, macs[0]), (g2, mac2), (g3, mac3)]
        .into_iter()
        .enumerate()
    {
        let delivered = &xen.domain(g).rx_delivered;
        assert_eq!(delivered.len(), injected[gi], "guest {gi} count");
        assert!(delivered.iter().all(|f| f.dst == mac), "cross-delivery");
        for flow in 20..26u32 {
            let s: Vec<u64> = delivered
                .iter()
                .filter(|f| f.flow == flow)
                .map(|f| f.seq)
                .collect();
            assert!(
                s.windows(2).all(|w| w[0] < w[1]),
                "flow {flow} reordered: {s:?}"
            );
        }
    }
}

#[test]
fn drr_weights_split_a_contended_flush_in_proportion() {
    // Two backlogged guests at weights 3:1 with quantum 4: each flush
    // round grants 12 frames to the heavy guest and 4 to the light one,
    // until a queue empties and its deficit resets.
    let opts = SystemOptions {
        num_nics: 1,
        rx_flush_quantum: 4,
        guest_weights: vec![(2, 3)],
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    let mac2 = MacAddr::for_guest(2);
    let mac3 = MacAddr::for_guest(3);
    let g2 = sys.add_guest(mac2).unwrap();
    let g3 = sys.add_guest(mac3).unwrap();
    let mut frames = Vec::new();
    for s in 0..24 {
        frames.push(mk(mac2, 40, s));
        frames.push(mk(mac3, 41, s));
    }
    let now = sys.now_cycles();
    sys.rx_open_loop_arrival(&frames, now).unwrap();

    // Round 1: 12 + 4.
    assert_eq!(sys.flush_rx_round().unwrap(), 16);
    let grants: Vec<(u32, usize)> = sys.rx_flush_log.iter().map(|&(_, g, n)| (g.0, n)).collect();
    assert_eq!(grants, vec![(g2.0, 12), (g3.0, 4)]);

    // Round 2 empties the heavy queue (deficit resets on empty).
    assert_eq!(sys.flush_rx_round().unwrap(), 16);
    assert_eq!(sys.delivered_rx_for(g2), 24);
    assert_eq!(sys.delivered_rx_for(g3), 8);

    // The light guest keeps its steady 4-frame grant to the end.
    assert_eq!(sys.flush_rx_round().unwrap(), 4);
    let grants: Vec<(u32, usize)> = sys.rx_flush_log.iter().map(|&(_, g, n)| (g.0, n)).collect();
    assert_eq!(grants, vec![(g3.0, 4)]);
    while sys.flush_rx_round().unwrap() > 0 {}
    assert_eq!(sys.delivered_rx_for(g3), 24, "nothing lost to weighting");
}

#[test]
fn early_drop_bounds_admission_and_is_accounted_per_guest() {
    // A 40-frame flood against a 16-frame backlog watermark: 16 admit,
    // 24 die at admission (before any ring or reap work), and the drops
    // are attributed to the flooded guest.
    let opts = SystemOptions {
        num_nics: 1,
        rx_backlog_watermark: Some(16),
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    let g1 = sys.guest.unwrap();
    let frames: Vec<Frame> = (0..40).map(|s| mk(MacAddr::for_guest(1), 7, s)).collect();
    let now = sys.now_cycles();
    sys.rx_open_loop_arrival(&frames, now).unwrap();
    assert_eq!(sys.rx_early_drops(), 24);
    assert_eq!(sys.rx_early_drops_for(g1), 24);
    assert_eq!(sys.machine.meter.event("early_drop"), 24);
    let until = sys.now_cycles() + 1_000_000;
    sys.rx_open_loop_service(until).unwrap();
    assert_eq!(sys.delivered_rx(), 16, "admitted frames all arrive");
    // The survivors kept their order.
    let delivered = &sys.world.xen.as_ref().unwrap().domain(g1).rx_delivered;
    let seqs: Vec<u64> = delivered.iter().map(|f| f.seq).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn early_drops_surface_in_aggregate_throughput() {
    // The closed-loop aggregate harness reports admission drops per
    // guest: bursts of 32 against a 24-frame watermark shed 8 per burst
    // into the flooded guest's early_drops bucket.
    let opts = SystemOptions {
        num_nics: 1,
        rx_backlog_watermark: Some(24),
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    let a = twindrivers::measure_aggregate_throughput(&mut sys, 32, 64).unwrap();
    let dropped = a.early_drops.get(&1).copied().unwrap_or(0);
    assert!(dropped > 0, "watermark drops surface in the aggregate");
    assert_eq!(a.early_drops.len(), 1, "only the flooded guest");
}

#[test]
fn off_knob_runtime_is_cycle_identical_to_defaults() {
    // Explicit unit weights, a never-binding queue cap and zeroed NAPI
    // weight must be indistinguishable — to the cycle — from a default
    // build over the same multi-guest traffic.
    let run = |explicit: bool| {
        let opts = if explicit {
            SystemOptions {
                num_nics: 2,
                shard: ShardPolicy::FlowHash,
                napi_weight: 0,
                rx_backlog_watermark: None,
                rx_queue_cap: Some(1 << 20),
                guest_weights: vec![(1, 1), (2, 1), (3, 1)],
                ..SystemOptions::default()
            }
        } else {
            SystemOptions {
                num_nics: 2,
                shard: ShardPolicy::FlowHash,
                ..SystemOptions::default()
            }
        };
        let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
        let macs = [
            MacAddr::for_guest(1),
            MacAddr::for_guest(2),
            MacAddr::for_guest(3),
        ];
        sys.add_guest(macs[1]).unwrap();
        sys.add_guest(macs[2]).unwrap();
        let mut seq = 0u64;
        for _ in 0..8 {
            let frames: Vec<Frame> = (0..24u32)
                .map(|i| {
                    seq += 1;
                    mk(macs[(i % 3) as usize], 30 + i % 5, seq)
                })
                .collect();
            assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
        }
        (sys.now_cycles(), sys.delivered_rx())
    };
    let (default_cycles, default_delivered) = run(false);
    let (explicit_cycles, explicit_delivered) = run(true);
    assert_eq!(default_delivered, explicit_delivered);
    assert_eq!(
        default_cycles, explicit_cycles,
        "off knobs must be structurally free"
    );
}
