//! Property-based tests on the core invariants:
//!
//! * **Rewriter equivalence** — for random driver-like programs, the
//!   SVM-rewritten binary executed in the hypervisor (through a real
//!   stlb, from a foreign address space) computes exactly what the
//!   original computes natively in dom0: same return value, same final
//!   data-section bytes. This is the paper's core correctness claim.
//! * **Assembler/encoder round-trips** on the same random programs.
//! * **stlb indexing** properties.

use proptest::prelude::*;
use twin_isa::asm::assemble;
use twin_isa::Module;
use twin_kernel::load_driver;
use twin_machine::{
    run, Cpu, Env, ExecMode, Fault, Machine, NullEnv, SpaceId, StopReason, HYPER_BASE, PAGE_SIZE,
};
use twin_rewriter::{rewrite, RewriteOptions};
use twin_svm::{Svm, CALL_XLAT_SYMBOL, SLOW_PATH_SYMBOL};

const VM_CODE: u64 = 0x0800_0000;
const HYP_CODE: u64 = 0x0c00_0000;
const DATA: u64 = 0x2600_0000;
const DOM0_STACK: u64 = 0x3000_0000;
const HYP_STACK: u64 = HYPER_BASE + 0x00a0_0000;

/// One random operation on the shared data buffer.
#[derive(Clone, Debug)]
enum Op {
    LoadConst(u32),
    Store(u16),
    Load(u16),
    AddMem(u16),
    AddConst(u32),
    XorToMem(u16),
    IncMem(u16),
    StoreByte(u16),
    LoadByte(u16),
    PushPop(u16, u16),
    Copy { src: u16, dst: u16, words: u8 },
    Fill { dst: u16, words: u8, val: u8 },
}

impl Op {
    fn emit(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Op::LoadConst(v) => writeln!(out, "    movl ${v}, %eax").unwrap(),
            Op::Store(o) => writeln!(out, "    movl %eax, buf+{o}").unwrap(),
            Op::Load(o) => writeln!(out, "    movl buf+{o}, %eax").unwrap(),
            Op::AddMem(o) => writeln!(out, "    addl buf+{o}, %eax").unwrap(),
            Op::AddConst(v) => writeln!(out, "    addl ${v}, %eax").unwrap(),
            Op::XorToMem(o) => writeln!(out, "    xorl %eax, buf+{o}").unwrap(),
            Op::IncMem(o) => writeln!(out, "    incl buf+{o}").unwrap(),
            Op::StoreByte(o) => writeln!(out, "    movb %eax, buf+{o}").unwrap(),
            Op::LoadByte(o) => writeln!(out, "    movzbl buf+{o}, %eax").unwrap(),
            Op::PushPop(a, b) => {
                writeln!(out, "    pushl buf+{a}").unwrap();
                writeln!(out, "    popl buf+{b}").unwrap();
            }
            Op::Copy { src, dst, words } => {
                writeln!(out, "    movl $buf+{src}, %esi").unwrap();
                writeln!(out, "    movl $buf+{dst}, %edi").unwrap();
                writeln!(out, "    movl ${words}, %ecx").unwrap();
                writeln!(out, "    rep movsl").unwrap();
            }
            Op::Fill { dst, words, val } => {
                writeln!(out, "    movl ${val}, %eax").unwrap();
                writeln!(out, "    movl $buf+{dst}, %edi").unwrap();
                writeln!(out, "    movl ${words}, %ecx").unwrap();
                writeln!(out, "    rep stosl").unwrap();
            }
        }
    }
}

const BUF: u16 = 8192; // spans 3 pages when offset by the data base

fn op_strategy() -> impl Strategy<Value = Op> {
    let off = (0u16..BUF / 4 - 1).prop_map(|i| i * 4);
    prop_oneof![
        (0u32..1000).prop_map(Op::LoadConst),
        off.clone().prop_map(Op::Store),
        off.clone().prop_map(Op::Load),
        off.clone().prop_map(Op::AddMem),
        (0u32..1000).prop_map(Op::AddConst),
        off.clone().prop_map(Op::XorToMem),
        off.clone().prop_map(Op::IncMem),
        (0u16..BUF - 1).prop_map(Op::StoreByte),
        (0u16..BUF - 1).prop_map(Op::LoadByte),
        (off.clone(), off.clone()).prop_map(|(a, b)| Op::PushPop(a, b)),
        ((0u16..128), (0u16..128), (1u8..40)).prop_map(|(s, d, w)| Op::Copy {
            src: s * 4,
            dst: BUF / 2 + d * 4,
            words: w,
        }),
        ((0u16..128), (1u8..40), any::<u8>()).prop_map(|(d, w, v)| Op::Fill {
            dst: BUF / 2 + d * 4,
            words: w,
            val: v,
        }),
    ]
}

fn program(ops: &[Op]) -> String {
    let mut src = String::from(
        "    .text\n    .globl f\nf:\n    pushl %ebp\n    movl %esp, %ebp\n    pushl %ebx\n    pushl %esi\n    pushl %edi\n    movl $0, %eax\n",
    );
    for op in ops {
        op.emit(&mut src);
    }
    // Checksum the buffer into eax so memory state is observable even
    // without comparing bytes.
    src.push_str(
        "    movl $0, %ecx\n    movl $0, %edx\nck_loop:\n    addl buf(%edx), %ecx\n    addl $4, %edx\n    cmpl $8192, %edx\n    jne ck_loop\n    movl %ecx, %eax\n",
    );
    src.push_str("    popl %edi\n    popl %esi\n    popl %ebx\n    popl %ebp\n    ret\n");
    src.push_str("    .data\n    .globl buf\nbuf:\n");
    // Deterministic non-zero initial contents.
    for i in 0..BUF / 4 {
        src.push_str(&format!(
            "    .long {}\n",
            (i as u32).wrapping_mul(2654435761)
        ));
    }
    src
}

struct SvmEnv {
    svm: Svm,
}

impl Env for SvmEnv {
    fn extern_call(&mut self, name: &str, m: &mut Machine, cpu: &mut Cpu) -> Result<(), Fault> {
        match name {
            SLOW_PATH_SYMBOL => {
                let a = cpu.arg(m, 0)? as u64;
                self.svm.slow_path(m, a)?;
                Ok(())
            }
            CALL_XLAT_SYMBOL => {
                let t = cpu.arg(m, 0)? as u64;
                let x = self.svm.translate_call(m, t)?;
                cpu.set_reg(twin_isa::Reg::Eax, x as u32);
                Ok(())
            }
            other => Err(Fault::UnknownExtern(other.to_string())),
        }
    }
    fn mmio_read(
        &mut self,
        _: &mut Machine,
        _: u32,
        a: u64,
        _: twin_isa::Width,
    ) -> Result<u32, Fault> {
        Err(Fault::MmioAccess { addr: a })
    }
    fn mmio_write(
        &mut self,
        _: &mut Machine,
        _: u32,
        a: u64,
        _: twin_isa::Width,
        _: u32,
    ) -> Result<(), Fault> {
        Err(Fault::MmioAccess { addr: a })
    }
}

fn run_native(module: &Module) -> (u32, Vec<u8>) {
    let mut m = Machine::new();
    let dom0 = m.new_space();
    m.map_stack(dom0, DOM0_STACK, 8).unwrap();
    let d = load_driver(&mut m, dom0, module, VM_CODE, DATA, |_| None).unwrap();
    let mut cpu = Cpu::new(dom0, ExecMode::Guest);
    cpu.set_stack(DOM0_STACK + 8 * PAGE_SIZE);
    cpu.push_call_frame(&mut m, &[]).unwrap();
    cpu.pc = d.entry("f").unwrap();
    let stop = run(&mut m, &mut cpu, &mut NullEnv, 50_000_000).unwrap();
    assert_eq!(stop, StopReason::Returned);
    (cpu.reg(twin_isa::Reg::Eax), dump(&m, dom0))
}

fn run_twin(module: &Module, opts: &RewriteOptions) -> (u32, Vec<u8>) {
    let out = rewrite(module, opts).unwrap();
    let mut m = Machine::new();
    let dom0 = m.new_space();
    let domu = m.new_space();
    m.map_hyper_fresh(HYP_STACK, 8).unwrap();
    let mut svm = Svm::new_hypervisor(&mut m, dom0, 0, (0, u64::MAX)).unwrap();
    let stlb = svm.placement().base;
    // Load data once in dom0 (relocs point at the VM image), then link
    // the hypervisor image at constant offset.
    let vm = load_driver(&mut m, dom0, &out.module, VM_CODE, DATA, |n| {
        (n == twin_svm::STLB_SYMBOL).then_some(stlb)
    })
    .unwrap();
    svm.set_code_mapping(
        (HYP_CODE - VM_CODE) as i64,
        (HYP_CODE, HYP_CODE + (out.module.text.len() as u64) * 4),
    );
    let img = m
        .load_image(&out.module, HYP_CODE, |n| {
            if n == twin_svm::STLB_SYMBOL {
                Some(stlb)
            } else {
                vm.data_symbol(n)
            }
        })
        .unwrap();
    let entry = m.image(img).export("f").unwrap();
    let mut cpu = Cpu::new(domu, ExecMode::Hypervisor);
    cpu.set_stack(HYP_STACK + 8 * PAGE_SIZE);
    cpu.push_call_frame(&mut m, &[]).unwrap();
    cpu.pc = entry;
    let mut env = SvmEnv { svm };
    let stop = run(&mut m, &mut cpu, &mut env, 100_000_000).unwrap();
    assert_eq!(stop, StopReason::Returned);
    (cpu.reg(twin_isa::Reg::Eax), dump(&m, dom0))
}

fn dump(m: &Machine, space: SpaceId) -> Vec<u8> {
    (0..BUF as u64)
        .map(|i| {
            m.read_virt(space, ExecMode::Guest, DATA + i, twin_isa::Width::Byte)
                .unwrap() as u8
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// The paper's core claim, as a property: rewriting preserves
    /// semantics under SVM from a foreign address space.
    #[test]
    fn rewritten_program_equivalent_to_original(ops in prop::collection::vec(op_strategy(), 1..24)) {
        let src = program(&ops);
        let module = assemble("p", &src).unwrap();
        let (r0, d0) = run_native(&module);
        let (r1, d1) = run_twin(&module, &RewriteOptions::default());
        prop_assert_eq!(r0, r1, "return values differ");
        prop_assert_eq!(d0, d1, "data section diverged");
    }

    /// Same property with liveness disabled (all sites spill).
    #[test]
    fn rewritten_program_equivalent_without_liveness(ops in prop::collection::vec(op_strategy(), 1..12)) {
        let src = program(&ops);
        let module = assemble("p", &src).unwrap();
        let (r0, d0) = run_native(&module);
        let opts = RewriteOptions { liveness: false, ..RewriteOptions::default() };
        let (r1, d1) = run_twin(&module, &opts);
        prop_assert_eq!(r0, r1);
        prop_assert_eq!(d0, d1);
    }

    /// Assembler round-trip: render(assemble(p)) reassembles identically.
    #[test]
    fn assembler_roundtrip(ops in prop::collection::vec(op_strategy(), 1..24)) {
        let src = program(&ops);
        let m1 = assemble("p", &src).unwrap();
        let m2 = assemble("p", &m1.render()).unwrap();
        prop_assert_eq!(&m1.text, &m2.text);
        prop_assert_eq!(&m1.labels, &m2.labels);
        prop_assert_eq!(&m1.data.bytes, &m2.data.bytes);
    }

    /// Object-format round-trip on random programs (original and
    /// rewritten).
    #[test]
    fn encode_roundtrip(ops in prop::collection::vec(op_strategy(), 1..16)) {
        let src = program(&ops);
        let m1 = assemble("p", &src).unwrap();
        let bytes = twin_isa::encode::encode(&m1);
        prop_assert_eq!(&m1, &twin_isa::encode::decode(&bytes).unwrap());
        let rw = rewrite(&m1, &RewriteOptions::default()).unwrap().module;
        let bytes = twin_isa::encode::encode(&rw);
        prop_assert_eq!(&rw, &twin_isa::encode::decode(&bytes).unwrap());
    }

    /// stlb index covers exactly bits 12..24 and offsets are preserved
    /// by translation.
    #[test]
    fn stlb_index_properties(addr in 0u64..0xE000_0000) {
        let idx = Svm::index_of(addr);
        prop_assert!(idx < twin_svm::STLB_ENTRIES);
        prop_assert_eq!(idx, Svm::index_of(addr & !0xfff));
        prop_assert_eq!(idx, (addr >> 12) % twin_svm::STLB_ENTRIES);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// The burst pipeline's core invariant: any interleaving of burst
    /// sizes on the TwinDrivers fast path delivers every frame, in
    /// order, on both directions — batching changes cost, never traffic.
    #[test]
    fn interleaved_bursts_never_drop_or_reorder(
        sizes in prop::collection::vec(1usize..33, 1..8),
    ) {
        use twin_net::{EtherType, Frame, MacAddr, MTU};
        use twindrivers::{peer_mac, Config, System};

        let mut sys = System::build(Config::TwinDrivers).unwrap();
        let mut sent = 0u64;
        let mut rx_seq = 0u64;
        for s in &sizes {
            prop_assert_eq!(sys.transmit_burst(*s).unwrap(), *s);
            sent += *s as u64;
            // Interleave a receive burst of a different size.
            let n = (*s as u64 / 2).max(1);
            let frames: Vec<Frame> = (0..n)
                .map(|_| {
                    let f = Frame {
                        dst: MacAddr::for_guest(1),
                        src: peer_mac(),
                        ethertype: EtherType::Ipv4,
                        payload_len: MTU,
                        flow: 5,
                        seq: rx_seq,
                    };
                    rx_seq += 1;
                    f
                })
                .collect();
            prop_assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
        }
        // Transmit: nothing dropped, strict wire order.
        let wire = sys.take_wire_frames();
        prop_assert_eq!(wire.len() as u64, sent);
        for w in wire.windows(2) {
            prop_assert!(w[0].seq < w[1].seq, "wire reordered");
        }
        // Receive: every injected frame reached the guest, in order.
        prop_assert_eq!(sys.delivered_rx() as u64, rx_seq);
        let gid = sys.guest.unwrap();
        let delivered = &sys.world.xen.as_ref().unwrap().domain(gid).rx_delivered;
        for (i, f) in delivered.iter().enumerate() {
            prop_assert_eq!(f.seq, i as u64, "guest delivery reordered");
        }
    }

    /// The multi-NIC sharding invariant: interleaved transmit and
    /// receive bursts of arbitrary sizes, sharded across 2–4 NICs by
    /// flow hash, never cross-deliver between guests, never drop a
    /// frame, and never reorder any (guest, flow) subsequence.
    #[test]
    fn sharded_bursts_never_cross_deliver_between_guests(
        sizes in prop::collection::vec(1usize..25, 1..6),
        nics in 2usize..5,
    ) {
        use twin_net::{EtherType, Frame, MacAddr, MTU};
        use twindrivers::{peer_mac, Config, ShardPolicy, System};

        let mut sys =
            System::build_sharded(Config::TwinDrivers, nics, ShardPolicy::FlowHash).unwrap();
        let g1 = sys.guest.unwrap();
        let mac2 = MacAddr::for_guest(2);
        let mac3 = MacAddr::for_guest(3);
        let g2 = sys.add_guest(mac2).unwrap();
        let g3 = sys.add_guest(mac3).unwrap();
        let macs = [MacAddr::for_guest(1), mac2, mac3];

        // Per-(guest, flow) sequence counters; six flows over three
        // guests so every burst mixes destinations and devices.
        let mut seqs = [0u64; 6];
        let mut injected = [0usize; 3];
        let mut tx_sent = 0u64;
        for (k, s) in sizes.iter().enumerate() {
            // Interleave a transmit burst (exercises the TX shards).
            prop_assert_eq!(sys.transmit_burst(*s).unwrap(), *s);
            tx_sent += *s as u64;
            let frames: Vec<Frame> = (0..*s as u32)
                .map(|i| {
                    let flow = ((k as u32) + i) % 6;
                    let guest = (flow % 3) as usize;
                    injected[guest] += 1;
                    let f = Frame {
                        dst: macs[guest],
                        src: peer_mac(),
                        ethertype: EtherType::Ipv4,
                        payload_len: MTU,
                        flow: 20 + flow,
                        seq: seqs[flow as usize],
                    };
                    seqs[flow as usize] += 1;
                    f
                })
                .collect();
            prop_assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
        }

        // Transmit: nothing dropped across the shards.
        prop_assert_eq!(sys.take_wire_frames().len() as u64, tx_sent);
        // Receive: each guest got exactly its own frames, with every
        // per-flow subsequence in order — frames never cross guests.
        let xen = sys.world.xen.as_ref().unwrap();
        for (gi, (g, mac)) in [(g1, macs[0]), (g2, mac2), (g3, mac3)].into_iter().enumerate() {
            let delivered = &xen.domain(g).rx_delivered;
            prop_assert_eq!(delivered.len(), injected[gi], "guest {} count", gi);
            prop_assert!(delivered.iter().all(|f| f.dst == mac), "cross-delivery");
            for flow in 20..26u32 {
                let s: Vec<u64> = delivered
                    .iter()
                    .filter(|f| f.flow == flow)
                    .map(|f| f.seq)
                    .collect();
                prop_assert!(s.windows(2).all(|w| w[0] < w[1]), "flow {} reordered", flow);
            }
        }
        prop_assert_eq!(sys.world.hyper.as_ref().unwrap().demux_misses, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// The zero-copy datapath's core invariant: under any interleaving
    /// of TX/RX bursts across 4 FlowHash-sharded NICs and three guests
    /// (one of them never granted a pool, so the copy fallback runs in
    /// the same pass as warm hits), zero-copy mode produces exactly the
    /// copy mode's traffic — same wire frames, same per-guest frame
    /// sets with every (guest, flow) subsequence in order, same pool
    /// state. The grant cache may only move cycles, never frames.
    #[test]
    fn zero_copy_equivalent_to_copy_across_shards(
        sizes in prop::collection::vec(1usize..21, 1..6),
        pool in prop_oneof![Just(1usize), Just(4), Just(64)],
    ) {
        use twin_net::{EtherType, Frame, MacAddr, MTU};
        use twindrivers::{peer_mac, Config, ShardPolicy, System, SystemOptions};

        let build = |zero_copy: bool| {
            System::build_with(
                Config::TwinDrivers,
                &SystemOptions {
                    num_nics: 4,
                    shard: ShardPolicy::FlowHash,
                    zero_copy,
                    // Tiny pools force the exhaustion fallback mid-burst.
                    zero_copy_pool_frames: pool,
                    ..SystemOptions::default()
                },
            )
            .unwrap()
        };
        let mut copy = build(false);
        let mut zc = build(true);

        let mac2 = MacAddr::for_guest(2);
        let mac3 = MacAddr::for_guest(3);
        for sys in [&mut copy, &mut zc] {
            let g2 = sys.add_guest(mac2).unwrap();
            sys.add_guest(mac3).unwrap();
            // Guest 2 granted after the fact, guest 3 never: frames to
            // g3 always take the fallback, in both modes.
            sys.grant_zero_copy_pool(g2).unwrap();
        }
        let macs = [MacAddr::for_guest(1), mac2, mac3];

        for sys in [&mut copy, &mut zc] {
            let mut seqs = [0u64; 6];
            for (k, s) in sizes.iter().enumerate() {
                prop_assert_eq!(sys.transmit_burst(*s).unwrap(), *s);
                let frames: Vec<Frame> = (0..*s as u32)
                    .map(|i| {
                        let flow = ((k as u32) + i) % 6;
                        let guest = (flow % 3) as usize;
                        let f = Frame {
                            dst: macs[guest],
                            src: peer_mac(),
                            ethertype: EtherType::Ipv4,
                            payload_len: MTU,
                            flow: 50 + flow,
                            seq: seqs[flow as usize],
                        };
                        seqs[flow as usize] += 1;
                        f
                    })
                    .collect();
                prop_assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
            }
        }

        // Identical wire traffic and per-guest deliveries.
        prop_assert_eq!(copy.take_wire_frames(), zc.take_wire_frames());
        let cxen = copy.world.xen.as_ref().unwrap();
        let zxen = zc.world.xen.as_ref().unwrap();
        for g in 1..4u32 {
            let cd = &cxen.domains[g as usize].rx_delivered;
            let zd = &zxen.domains[g as usize].rx_delivered;
            prop_assert_eq!(cd, zd, "guest {} deliveries", g);
            for flow in 50..56u32 {
                let seq: Vec<u64> =
                    zd.iter().filter(|f| f.flow == flow).map(|f| f.seq).collect();
                prop_assert!(
                    seq.windows(2).all(|w| w[0] < w[1]),
                    "guest {} flow {} reordered: {:?}", g, flow, seq
                );
            }
        }
        // Identical side effects on shared state.
        prop_assert_eq!(
            copy.world.kernel.pool.available(),
            zc.world.kernel.pool.available()
        );
        prop_assert_eq!(
            copy.world.kernel.hyper_pool.as_ref().unwrap().available(),
            zc.world.kernel.hyper_pool.as_ref().unwrap().available()
        );
        prop_assert_eq!(copy.world.hyper.as_ref().unwrap().demux_misses, 0);
        prop_assert_eq!(zc.world.hyper.as_ref().unwrap().demux_misses, 0);
        // The zero-copy run actually exercised the cache (and, with a
        // tiny pool, the fallback) — cycles moved, traffic did not.
        let stats = zc.grant_cache_stats().unwrap();
        prop_assert!(stats.hits + stats.misses > 0, "cache engaged");
    }

    /// The deferred-upcall engine's core invariant: under any
    /// interleaving of transmit/receive bursts across 4 sharded NICs,
    /// with any number of fast-path routines forced onto the upcall
    /// path, deferred mode produces exactly the synchronous mode's
    /// results and side effects — same wire frames, same guest
    /// deliveries, same pool state. Deferral may only move cycles.
    #[test]
    fn deferred_upcalls_equivalent_to_sync_across_shards(
        sizes in prop::collection::vec(1usize..21, 1..5),
        upcalls in 1usize..10,
    ) {
        use twin_net::{EtherType, Frame, MacAddr, MTU};
        use twindrivers::{
            peer_mac, Config, ShardPolicy, System, SystemOptions, UpcallMode,
        };

        let build = |mode: UpcallMode| {
            System::build_with(
                Config::TwinDrivers,
                &SystemOptions {
                    num_nics: 4,
                    shard: ShardPolicy::FlowHash,
                    upcall_count: upcalls,
                    upcall_mode: mode,
                    ..SystemOptions::default()
                },
            )
            .unwrap()
        };
        let mut sync = build(UpcallMode::Sync);
        let mut defer = build(UpcallMode::Deferred);
        for sys in [&mut sync, &mut defer] {
            let mut rx_seq = 0u64;
            for (k, s) in sizes.iter().enumerate() {
                prop_assert_eq!(sys.transmit_burst(*s).unwrap(), *s);
                let frames: Vec<Frame> = (0..*s as u32)
                    .map(|i| {
                        let f = Frame {
                            dst: MacAddr::for_guest(1),
                            src: peer_mac(),
                            ethertype: EtherType::Ipv4,
                            payload_len: MTU,
                            flow: 30 + ((k as u32) + i) % 6,
                            seq: rx_seq,
                        };
                        rx_seq += 1;
                        f
                    })
                    .collect();
                prop_assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
            }
        }
        // Identical traffic...
        prop_assert_eq!(sync.take_wire_frames(), defer.take_wire_frames());
        let gs = sync.guest.unwrap();
        let gd = defer.guest.unwrap();
        prop_assert_eq!(
            &sync.world.xen.as_ref().unwrap().domain(gs).rx_delivered,
            &defer.world.xen.as_ref().unwrap().domain(gd).rx_delivered
        );
        // ...and identical side effects on shared state.
        prop_assert_eq!(
            sync.world.kernel.pool.available(),
            defer.world.kernel.pool.available()
        );
        prop_assert_eq!(
            sync.world.kernel.hyper_pool.as_ref().unwrap().available(),
            defer.world.kernel.hyper_pool.as_ref().unwrap().available()
        );
        prop_assert_eq!(
            sync.world.hyper.as_ref().unwrap().demux_misses,
            defer.world.hyper.as_ref().unwrap().demux_misses
        );
        // The deferred run really deferred (and drained its ring).
        let engine = &defer.world.hyper.as_ref().unwrap().engine;
        prop_assert!(engine.stats.flushes > 0, "engine engaged");
        prop_assert_eq!(engine.depth(), 0, "ring drained at pass end");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// The virtual-time engine's core invariant: arbitrary interleaved
    /// TX/RX bursts across 4 FlowHash-sharded NICs with random
    /// per-device ITR values, deferred upcalls and a flush deadline
    /// deliver exactly the same frame sets as ITR=0/sync mode —
    /// moderation and deferral may move *when* things happen, never
    /// *what* happens: same wire frames, same per-guest deliveries with
    /// every (guest, flow) subsequence in order, same pool state.
    #[test]
    fn moderated_delivery_equivalent_to_unmoderated_sync(
        sizes in prop::collection::vec(1usize..21, 1..5),
        itrs in prop::collection::vec(0u32..2500, 4..5),
        upcalls in 0usize..10,
        idle in 1_000u64..400_000,
    ) {
        use twin_net::{EtherType, Frame, MacAddr, MTU};
        use twindrivers::{
            peer_mac, Config, ShardPolicy, System, SystemOptions, UpcallMode,
        };

        let build = |moderated: bool| {
            System::build_with(
                Config::TwinDrivers,
                &SystemOptions {
                    num_nics: 4,
                    shard: ShardPolicy::FlowHash,
                    // Same forced-upcall set on both sides: only the
                    // *mode* (deferred vs sync) and the timers differ.
                    upcall_count: upcalls,
                    upcall_mode: if moderated {
                        UpcallMode::Deferred
                    } else {
                        UpcallMode::Sync
                    },
                    upcall_flush_deadline_cycles: moderated.then_some(300_000),
                    ..SystemOptions::default()
                },
            )
            .unwrap()
        };
        let mut reference = build(false);
        let mut moderated = build(true);
        // Random per-device moderation windows on the moderated system.
        for (dev, itr) in itrs.iter().enumerate() {
            moderated.set_itr(dev as u32, *itr).unwrap();
        }

        let mac2 = MacAddr::for_guest(2);
        let mac3 = MacAddr::for_guest(3);
        for sys in [&mut reference, &mut moderated] {
            sys.add_guest(mac2).unwrap();
            sys.add_guest(mac3).unwrap();
        }
        let macs = [MacAddr::for_guest(1), mac2, mac3];

        // A settle burst covering every device: TX-descriptor reclaim
        // happens on a device's *next* driver invocation, so both
        // systems get one final interrupt pass per NIC — otherwise the
        // moderated run's extra idle-time passes reclaim more of the
        // final TX tail than the reference and pool counts diverge for
        // bookkeeping (not correctness) reasons.
        let settle: Vec<Frame> = {
            let mut frames = Vec::new();
            let mut covered = [false; 4];
            let mut flow = 100u32;
            while covered.iter().any(|c| !c) {
                let dev = ((flow.wrapping_mul(2_654_435_761) >> 16) % 4) as usize;
                if !covered[dev] {
                    covered[dev] = true;
                    frames.push(Frame {
                        dst: macs[0],
                        src: peer_mac(),
                        ethertype: EtherType::Ipv4,
                        payload_len: MTU,
                        flow,
                        seq: 0,
                    });
                }
                flow += 1;
            }
            frames
        };

        for (pass, sys) in [&mut reference, &mut moderated].into_iter().enumerate() {
            let mut seqs = [0u64; 6];
            for (k, s) in sizes.iter().enumerate() {
                prop_assert_eq!(sys.transmit_burst(*s).unwrap(), *s);
                let frames: Vec<Frame> = (0..*s as u32)
                    .map(|i| {
                        let flow = ((k as u32) + i) % 6;
                        let guest = (flow % 3) as usize;
                        let f = Frame {
                            dst: macs[guest],
                            src: peer_mac(),
                            ethertype: EtherType::Ipv4,
                            payload_len: MTU,
                            flow: 40 + flow,
                            seq: seqs[flow as usize],
                        };
                        seqs[flow as usize] += 1;
                        f
                    })
                    .collect();
                prop_assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
                if pass == 1 {
                    // Only the moderated system needs time to pass for
                    // its windows; the reference delivers inline.
                    sys.run_idle(idle).unwrap();
                }
            }
            if pass == 1 {
                sys.drain_moderated().unwrap();
            }
            prop_assert_eq!(sys.receive_burst(&settle).unwrap(), settle.len());
            if pass == 1 {
                sys.drain_moderated().unwrap();
            }
        }

        // Identical wire traffic (TX is untouched by moderation).
        prop_assert_eq!(reference.take_wire_frames(), moderated.take_wire_frames());
        // Identical per-guest deliveries: same frame sets, and every
        // (guest, flow) subsequence in arrival order. Cross-flow
        // interleaving may differ — devices reap at different instants —
        // which is exactly the FlowHash ordering contract.
        let rxen = reference.world.xen.as_ref().unwrap();
        let mxen = moderated.world.xen.as_ref().unwrap();
        for g in 1..4u32 {
            let rd = &rxen.domains[g as usize].rx_delivered;
            let md = &mxen.domains[g as usize].rx_delivered;
            let mut rs: Vec<(u32, u64)> = rd.iter().map(|f| (f.flow, f.seq)).collect();
            let mut ms: Vec<(u32, u64)> = md.iter().map(|f| (f.flow, f.seq)).collect();
            rs.sort_unstable();
            ms.sort_unstable();
            prop_assert_eq!(rs, ms, "guest {} frame set", g);
            for flow in 40..46u32 {
                let seq: Vec<u64> =
                    md.iter().filter(|f| f.flow == flow).map(|f| f.seq).collect();
                prop_assert!(
                    seq.windows(2).all(|w| w[0] < w[1]),
                    "guest {} flow {} reordered: {:?}", g, flow, seq
                );
            }
        }
        // Identical side effects on shared state once everything drained.
        prop_assert_eq!(
            reference.world.kernel.pool.available(),
            moderated.world.kernel.pool.available()
        );
        prop_assert_eq!(
            reference.world.kernel.hyper_pool.as_ref().unwrap().available(),
            moderated.world.kernel.hyper_pool.as_ref().unwrap().available()
        );
        prop_assert_eq!(
            moderated.world.nics.iter().map(|n| n.stats().rx_missed).sum::<u64>(),
            0u64,
            "moderation never drops"
        );
        prop_assert_eq!(reference.world.hyper.as_ref().unwrap().demux_misses, 0);
        prop_assert_eq!(moderated.world.hyper.as_ref().unwrap().demux_misses, 0);
    }

    /// The auto-tuner's core invariant: a closed-loop retuned system
    /// delivers exactly what the untuned (ITR 0) system delivers under
    /// any interleaving of TX/RX bursts and idle gaps across 4
    /// FlowHash-sharded NICs — the moving `ITR` knob shifts *when*
    /// interrupts fire, never *what* traffic flows: same wire frames,
    /// same per-guest frame sets with every (guest, flow) subsequence
    /// in order, same pool state, zero drops.
    #[test]
    fn autotuned_delivery_equivalent_to_untuned(
        sizes in prop::collection::vec(1usize..21, 1..5),
        upcalls in 0usize..10,
        idle in 1_000u64..400_000,
    ) {
        use twin_net::{EtherType, Frame, MacAddr, MTU};
        use twindrivers::{
            peer_mac, Config, ShardPolicy, System, SystemOptions,
        };

        let build = |autotune: bool| {
            System::build_with(
                Config::TwinDrivers,
                &SystemOptions {
                    num_nics: 4,
                    shard: ShardPolicy::FlowHash,
                    upcall_count: upcalls,
                    itr_autotune: autotune,
                    ..SystemOptions::default()
                },
            )
            .unwrap()
        };
        let mut reference = build(false);
        let mut tuned = build(true);

        let mac2 = MacAddr::for_guest(2);
        let mac3 = MacAddr::for_guest(3);
        for sys in [&mut reference, &mut tuned] {
            sys.add_guest(mac2).unwrap();
            sys.add_guest(mac3).unwrap();
        }
        let macs = [MacAddr::for_guest(1), mac2, mac3];

        // One final interrupt pass per NIC equalizes TX-descriptor
        // reclaim timing between the two runs (see the moderated
        // proptest above for the rationale).
        let settle: Vec<Frame> = {
            let mut frames = Vec::new();
            let mut covered = [false; 4];
            let mut flow = 100u32;
            while covered.iter().any(|c| !c) {
                let dev = ((flow.wrapping_mul(2_654_435_761) >> 16) % 4) as usize;
                if !covered[dev] {
                    covered[dev] = true;
                    frames.push(Frame {
                        dst: macs[0],
                        src: peer_mac(),
                        ethertype: EtherType::Ipv4,
                        payload_len: MTU,
                        flow,
                        seq: 0,
                    });
                }
                flow += 1;
            }
            frames
        };

        for (pass, sys) in [&mut reference, &mut tuned].into_iter().enumerate() {
            let mut seqs = [0u64; 6];
            for (k, s) in sizes.iter().enumerate() {
                prop_assert_eq!(sys.transmit_burst(*s).unwrap(), *s);
                let frames: Vec<Frame> = (0..*s as u32)
                    .map(|i| {
                        let flow = ((k as u32) + i) % 6;
                        let guest = (flow % 3) as usize;
                        let f = Frame {
                            dst: macs[guest],
                            src: peer_mac(),
                            ethertype: EtherType::Ipv4,
                            payload_len: MTU,
                            flow: 40 + flow,
                            seq: seqs[flow as usize],
                        };
                        seqs[flow as usize] += 1;
                        f
                    })
                    .collect();
                prop_assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
                if pass == 1 {
                    // Idle lets the tuner's windows elapse and any
                    // moderated window it programmed open.
                    sys.run_idle(idle).unwrap();
                }
            }
            if pass == 1 {
                sys.drain_moderated().unwrap();
            }
            prop_assert_eq!(sys.receive_burst(&settle).unwrap(), settle.len());
            if pass == 1 {
                sys.drain_moderated().unwrap();
            }
        }

        // Identical wire traffic and per-guest deliveries.
        prop_assert_eq!(reference.take_wire_frames(), tuned.take_wire_frames());
        let rxen = reference.world.xen.as_ref().unwrap();
        let txen = tuned.world.xen.as_ref().unwrap();
        for g in 1..4u32 {
            let rd = &rxen.domains[g as usize].rx_delivered;
            let td = &txen.domains[g as usize].rx_delivered;
            let mut rs: Vec<(u32, u64)> = rd.iter().map(|f| (f.flow, f.seq)).collect();
            let mut ts: Vec<(u32, u64)> = td.iter().map(|f| (f.flow, f.seq)).collect();
            rs.sort_unstable();
            ts.sort_unstable();
            prop_assert_eq!(rs, ts, "guest {} frame set", g);
            for flow in 40..46u32 {
                let seq: Vec<u64> =
                    td.iter().filter(|f| f.flow == flow).map(|f| f.seq).collect();
                prop_assert!(
                    seq.windows(2).all(|w| w[0] < w[1]),
                    "guest {} flow {} reordered: {:?}", g, flow, seq
                );
            }
        }
        prop_assert_eq!(
            reference.world.kernel.pool.available(),
            tuned.world.kernel.pool.available()
        );
        prop_assert_eq!(
            reference.world.kernel.hyper_pool.as_ref().unwrap().available(),
            tuned.world.kernel.hyper_pool.as_ref().unwrap().available()
        );
        prop_assert_eq!(
            tuned.world.nics.iter().map(|n| n.stats().rx_missed).sum::<u64>(),
            0u64,
            "a moving ITR still delays, never drops"
        );
        prop_assert_eq!(reference.world.hyper.as_ref().unwrap().demux_misses, 0);
        prop_assert_eq!(tuned.world.hyper.as_ref().unwrap().demux_misses, 0);
    }

    /// The flight recorder's core invariant: tracing is *observation
    /// only*. For any interleaving of TX/RX bursts and idle gaps across
    /// 4 FlowHash-sharded NICs with NAPI, DRR weights and deferred
    /// upcalls all active, a traced run is bit-exact with an untraced
    /// one — same virtual clock, same per-domain cycles, same named
    /// meter events, same wire frames, same per-guest deliveries, same
    /// pool state. The only permitted difference is the recorder's own
    /// contents.
    #[test]
    fn traced_run_is_bit_exact_with_untraced(
        sizes in prop::collection::vec(1usize..21, 1..5),
        upcalls in 0usize..10,
        idle in 1_000u64..400_000,
    ) {
        use twin_net::{EtherType, Frame, MacAddr, MTU};
        use twindrivers::{
            peer_mac, Config, ShardPolicy, System, SystemOptions, UpcallMode,
        };

        let build = |tracing: bool| {
            System::build_with(
                Config::TwinDrivers,
                &SystemOptions {
                    num_nics: 4,
                    shard: ShardPolicy::FlowHash,
                    upcall_count: upcalls,
                    upcall_mode: UpcallMode::Deferred,
                    upcall_flush_deadline_cycles: Some(300_000),
                    napi_weight: 16,
                    rx_queue_cap: Some(256),
                    rx_backlog_watermark: Some(512),
                    guest_weights: vec![(2, 64), (3, 64)],
                    tracing,
                    ..SystemOptions::default()
                },
            )
            .unwrap()
        };
        let mut traced = build(true);
        let mut untraced = build(false);

        let mac2 = MacAddr::for_guest(2);
        let mac3 = MacAddr::for_guest(3);
        for sys in [&mut traced, &mut untraced] {
            sys.add_guest(mac2).unwrap();
            sys.add_guest(mac3).unwrap();
        }
        let macs = [MacAddr::for_guest(1), mac2, mac3];

        for sys in [&mut traced, &mut untraced] {
            let mut seqs = [0u64; 6];
            for (k, s) in sizes.iter().enumerate() {
                prop_assert_eq!(sys.transmit_burst(*s).unwrap(), *s);
                let frames: Vec<Frame> = (0..*s as u32)
                    .map(|i| {
                        let flow = ((k as u32) + i) % 6;
                        let guest = (flow % 3) as usize;
                        let f = Frame {
                            dst: macs[guest],
                            src: peer_mac(),
                            ethertype: EtherType::Ipv4,
                            payload_len: MTU,
                            flow: 40 + flow,
                            seq: seqs[flow as usize],
                        };
                        seqs[flow as usize] += 1;
                        f
                    })
                    .collect();
                prop_assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
                sys.run_idle(idle).unwrap();
            }
            sys.drain_moderated().unwrap();
        }

        // The traced side actually recorded something (NAPI is on, so at
        // minimum irq/poll events) — the comparison is not vacuous.
        prop_assert!(!traced.machine.trace.is_empty(), "recorder engaged");
        prop_assert_eq!(untraced.machine.trace.len(), 0);

        // Bit-exact accounting.
        prop_assert_eq!(traced.machine.meter.now(), untraced.machine.meter.now());
        prop_assert_eq!(
            traced.machine.meter.snapshot(),
            untraced.machine.meter.snapshot()
        );
        prop_assert_eq!(
            traced.machine.meter.events(),
            untraced.machine.meter.events()
        );
        // Bit-exact traffic and shared state.
        prop_assert_eq!(traced.take_wire_frames(), untraced.take_wire_frames());
        let txen = traced.world.xen.as_ref().unwrap();
        let uxen = untraced.world.xen.as_ref().unwrap();
        for g in 1..4usize {
            prop_assert_eq!(
                &txen.domains[g].rx_delivered,
                &uxen.domains[g].rx_delivered,
                "guest {} deliveries", g
            );
        }
        prop_assert_eq!(
            traced.world.kernel.pool.available(),
            untraced.world.kernel.pool.available()
        );
        for (nt, nu) in traced.world.nics.iter().zip(untraced.world.nics.iter()) {
            prop_assert_eq!(nt.stats(), nu.stats());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 5,
        ..ProptestConfig::default()
    })]

    /// The fault-isolation invariant: a fault of any class, against any
    /// device, at any point in the schedule, never perturbs the
    /// survivors — every surviving device's per-flow delivery sequence
    /// is exactly the unfaulted control run's, the faulted device loses
    /// exactly its armed burst, recovery completes, and pool state
    /// returns to the pre-fault steady state (no per-episode leak).
    #[test]
    fn random_faults_never_corrupt_survivors(
        class_i in 0usize..3,
        dev in 0u32..3,
        fault_round in 1usize..4,
        burst in 4usize..13,
    ) {
        use twin_net::{EtherType, Frame, MacAddr, MTU};
        use twindrivers::measure::{fault_injected_source, FaultClass};
        use twindrivers::{
            peer_mac, Config, ShardPolicy, System, SystemError, SystemOptions,
        };

        let nics = 3u32;
        let class = FaultClass::ALL[class_i];
        let build = |recovery: bool| {
            System::build_with(
                Config::TwinDrivers,
                &SystemOptions {
                    driver_source: Some(fault_injected_source(class)),
                    num_nics: nics as usize,
                    shard: ShardPolicy::FlowHash,
                    zero_copy: true,
                    fault_recovery: recovery,
                    ..SystemOptions::default()
                },
            )
            .unwrap()
        };
        let mut sys = build(true);
        let mut control = build(false);

        let flow_for = |d: u32| -> u32 {
            (0u32..)
                .map(|i| 0x7100 + i)
                .find(|f| (f.wrapping_mul(2_654_435_761) >> 16) % nics == d)
                .unwrap()
        };
        let mut seq = 0u64;
        let mut frames_for = |d: u32, n: usize| -> Vec<Frame> {
            (0..n)
                .map(|_| {
                    let f = Frame {
                        dst: MacAddr::for_guest(1),
                        src: peer_mac(),
                        ethertype: EtherType::Ipv4,
                        payload_len: MTU,
                        flow: flow_for(d),
                        seq,
                    };
                    seq += 1;
                    f
                })
                .collect()
        };

        // One fault-free round to reach steady state, then snapshot the
        // pool occupancy every later episode must return to.
        for d in 0..nics {
            let f = frames_for(d, burst);
            prop_assert_eq!(sys.receive_burst(&f).unwrap(), burst);
            prop_assert_eq!(control.receive_burst(&f).unwrap(), burst);
        }
        // The ring's *composition* shifts after a reset (the dom0-driven
        // refill uses dom0-pool skbs; the hypervisor reap converges it
        // back toward hyper-pool skbs over later rounds), so the
        // conserved quantity is the total: every skb is in some pool or
        // posted in a ring — none lost, none double-freed.
        let steady = sys.world.kernel.pool.available()
            + sys.world.kernel.hyper_pool.as_ref().unwrap().available();

        let mut lost = 0u64..0;
        for round in 1..6usize {
            for d in 0..nics {
                let f = frames_for(d, burst);
                prop_assert_eq!(control.receive_burst(&f).unwrap(), burst);
                if round == fault_round && d == dev {
                    lost = f[0].seq..f[0].seq + burst as u64;
                    sys.arm_driver_fault(class.arm_value(dev)).unwrap();
                    match sys.receive_burst(&f) {
                        Err(SystemError::DriverAborted(_)) => {}
                        other => prop_assert!(false, "expected abort, got {:?}", other),
                    }
                } else {
                    prop_assert_eq!(sys.receive_burst(&f).unwrap(), burst);
                }
            }
        }

        prop_assert_eq!(sys.recovery_log().len(), 1);
        prop_assert!(sys.quarantined_devices().is_empty());
        let gid = sys.guest.unwrap();
        let got_all = &sys.world.xen.as_ref().unwrap().domain(gid).rx_delivered;
        let gid_c = control.guest.unwrap();
        let want_all = &control.world.xen.as_ref().unwrap().domain(gid_c).rx_delivered;
        for d in 0..nics {
            let flow = flow_for(d);
            let got: Vec<u64> =
                got_all.iter().filter(|f| f.flow == flow).map(|f| f.seq).collect();
            let want: Vec<u64> = want_all
                .iter()
                .filter(|f| f.flow == flow)
                .map(|f| f.seq)
                .filter(|s| d != dev || !lost.contains(s))
                .collect();
            if d == dev {
                prop_assert_eq!(got, want, "dev {} must lose exactly the armed burst", d);
            } else {
                prop_assert_eq!(got, want, "survivor dev {} traffic diverged", d);
            }
        }
        prop_assert_eq!(
            sys.world.kernel.pool.available()
                + sys.world.kernel.hyper_pool.as_ref().unwrap().available(),
            steady,
            "episode leaked skbs"
        );
        prop_assert_eq!(sys.world.hyper.as_ref().unwrap().demux_misses, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// The affinity-equivalence invariant: `ShardPolicy::Affinity`
    /// under an arbitrary vCPU run/sleep schedule is functionally
    /// identical to `ShardPolicy::FlowHash` under the *same* schedule —
    /// same TX wire frames, same per-(guest, flow) delivery sequences
    /// (in arrival order, never reordered by placement, migration or
    /// sleep deferral), same buffer-pool state once the deferred
    /// backlog drains. Affinity may only move cycles, never traffic.
    #[test]
    fn affinity_equivalent_to_flowhash_under_random_schedules(
        sizes in prop::collection::vec(1usize..17, 1..6),
        scheds in prop::collection::vec(
            (0u32..4, 50_000u64..400_000, 0u64..400_000),
            3..4,
        ),
        idles in prop::collection::vec(0u64..300_000, 1..6),
    ) {
        use twin_net::{EtherType, Frame, MacAddr, MTU};
        use twindrivers::system::DomId;
        use twindrivers::{
            peer_mac, Config, SchedOptions, ShardPolicy, System, SystemOptions,
        };

        let build = |shard: ShardPolicy| {
            System::build_with(
                Config::TwinDrivers,
                &SystemOptions {
                    num_nics: 4,
                    shard,
                    sched: Some(SchedOptions {
                        num_cpus: 4,
                        ..SchedOptions::default()
                    }),
                    ..SystemOptions::default()
                },
            )
            .unwrap()
        };
        let mut fh = build(ShardPolicy::FlowHash);
        let mut af = build(ShardPolicy::Affinity);

        let mac2 = MacAddr::for_guest(2);
        let mac3 = MacAddr::for_guest(3);
        let macs = [MacAddr::for_guest(1), mac2, mac3];
        for sys in [&mut fh, &mut af] {
            sys.add_guest(mac2).unwrap();
            sys.add_guest(mac3).unwrap();
            // Identical registration instants: the phase-locked edges
            // land at the same absolute cycle in both systems, even
            // though their clocks drift apart later (cold refills are
            // charged differently per policy).
            for (g, &(cpu, run, sleep)) in scheds.iter().enumerate() {
                sys.sched_add_vcpu(DomId(g as u32 + 1), cpu, run, sleep)
                    .unwrap();
            }
        }

        for sys in [&mut fh, &mut af] {
            let mut seqs = [0u64; 6];
            for (k, s) in sizes.iter().enumerate() {
                prop_assert_eq!(sys.transmit_burst(*s).unwrap(), *s);
                let frames: Vec<Frame> = (0..*s as u32)
                    .map(|i| {
                        let flow = ((k as u32) + i) % 6;
                        let guest = (flow % 3) as usize;
                        let f = Frame {
                            dst: macs[guest],
                            src: peer_mac(),
                            ethertype: EtherType::Ipv4,
                            payload_len: MTU,
                            flow: 50 + flow,
                            seq: seqs[flow as usize],
                        };
                        seqs[flow as usize] += 1;
                        f
                    })
                    .collect();
                prop_assert_eq!(sys.receive_burst(&frames).unwrap(), frames.len());
                // Let the schedule flip mid-traffic so bursts land in
                // run and sleep phases alike.
                sys.run_idle(idles[k % idles.len()]).unwrap();
            }
            // Drain the deferred backlog past the last sleep phase.
            for _ in 0..64 {
                let backlog = sys
                    .world
                    .xen
                    .as_ref()
                    .unwrap()
                    .domains
                    .iter()
                    .any(|d| !d.rx_queue.is_empty());
                if !backlog {
                    break;
                }
                sys.run_idle(500_000).unwrap();
            }
            // TX-completion reap rides device interrupts, whose timing
            // is policy-dependent (affinity moves RX interrupts across
            // devices). One final 8-frame pass covers every TX ring
            // (flows 1..8 hash onto all four devices), cleaning each
            // before posting, so pool state compares at quiescence.
            prop_assert_eq!(sys.transmit_burst(8).unwrap(), 8);
            sys.run_idle(500_000).unwrap();
        }

        // Identical wire traffic.
        prop_assert_eq!(fh.take_wire_frames(), af.take_wire_frames());
        let fxen = fh.world.xen.as_ref().unwrap();
        let axen = af.world.xen.as_ref().unwrap();
        for g in 1..4u32 {
            let fd = &fxen.domains[g as usize].rx_delivered;
            let ad = &axen.domains[g as usize].rx_delivered;
            prop_assert!(
                fxen.domains[g as usize].rx_queue.is_empty()
                    && axen.domains[g as usize].rx_queue.is_empty(),
                "guest {} backlog drained", g
            );
            for flow in 50..56u32 {
                let fseq: Vec<u64> =
                    fd.iter().filter(|f| f.flow == flow).map(|f| f.seq).collect();
                let aseq: Vec<u64> =
                    ad.iter().filter(|f| f.flow == flow).map(|f| f.seq).collect();
                prop_assert_eq!(&fseq, &aseq, "guest {} flow {}", g, flow);
                prop_assert!(
                    aseq.windows(2).all(|w| w[0] < w[1]),
                    "guest {} flow {} reordered: {:?}", g, flow, aseq
                );
            }
        }
        // Identical side effects on shared state.
        prop_assert_eq!(
            fh.world.kernel.pool.available(),
            af.world.kernel.pool.available()
        );
        prop_assert_eq!(
            fh.world.kernel.hyper_pool.as_ref().unwrap().available(),
            af.world.kernel.hyper_pool.as_ref().unwrap().available()
        );
        prop_assert_eq!(fh.world.hyper.as_ref().unwrap().demux_misses, 0);
        prop_assert_eq!(af.world.hyper.as_ref().unwrap().demux_misses, 0);
    }
}
