//! Closed-loop ITR auto-tuning end to end: the tuner converges to the
//! bulk rung under sustained load and decays after sustained idle, the
//! step profile's phases land on the regime-appropriate rungs, and —
//! the zero-regression contract — with the tuner off the moderated
//! receive path reproduces `bench/baseline_itr.json` to the decimal.

use twin_nic::{AUTOTUNE_WINDOW_CYCLES, IDLE_DECAY_GRACE_WINDOWS};
use twindrivers::measure::{measure_rx_autotuned, LoadProfile};
use twindrivers::{peer_mac, Config, ShardPolicy, System, SystemOptions};

/// Parses `bench/baseline_itr.json` into
/// `(packets, gap, [(nics, burst, itr, cpp, irqs_per_pkt, p50, p99)])`.
#[allow(clippy::type_complexity)]
fn parse_itr_baseline() -> (u64, u64, Vec<(usize, usize, u32, f64, f64, u64, u64)>) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench/baseline_itr.json");
    let text = std::fs::read_to_string(path).expect("bench/baseline_itr.json");
    let field = |line: &str, name: &str| -> f64 {
        let key = format!("\"{name}\": ");
        let i = line
            .find(&key)
            .unwrap_or_else(|| panic!("{name} in {line}"))
            + key.len();
        let rest = &line[i..];
        let end = rest.find([',', '}']).expect("field terminator");
        rest[..end].trim().parse().expect("numeric field")
    };
    let mut packets = 0u64;
    let mut gap = 0u64;
    let mut points = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"packets\"") {
            packets = field(&format!("{{{line}"), "packets") as u64;
        }
        if line.starts_with("\"gap_cycles\"") {
            gap = field(&format!("{{{line}"), "gap_cycles") as u64;
        }
        if line.starts_with('{') && line.contains("\"itr\"") {
            points.push((
                field(line, "nics") as usize,
                field(line, "burst") as usize,
                field(line, "itr") as u32,
                field(line, "rx_cycles_per_packet"),
                field(line, "irqs_per_packet"),
                field(line, "p50_cycles") as u64,
                field(line, "p99_cycles") as u64,
            ));
        }
    }
    (packets, gap, points)
}

#[test]
fn autotune_off_is_cycle_exact_with_the_itr_baseline() {
    // The tuner machinery (per-pass service hooks, the tuner-window
    // virtual-timer source, the shared pacing loop) must be invisible
    // when the knob is off: the moderation sweep's headline row — the
    // unmoderated and the widest-window point at burst 32 on 4 NICs —
    // reproduces the committed baseline to the decimal, percentiles
    // included (which also pins the bounded latency reservoir to the
    // exact-percentile regime).
    let (packets, gap, points) = parse_itr_baseline();
    assert_eq!(packets, 384, "baseline was generated at 384 packets");
    let rows: Vec<_> = points
        .iter()
        .filter(|(n, b, itr, ..)| *n == 4 && *b == 32 && (*itr == 0 || *itr == 2000))
        .collect();
    assert_eq!(rows.len(), 2, "both acceptance-row endpoints present");
    for &(nics, burst, itr, cpp, irqs, p50, p99) in rows {
        let opts = SystemOptions {
            num_nics: nics,
            shard: ShardPolicy::FlowHash,
            itr,
            ..SystemOptions::default()
        };
        let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
        assert!(!sys.itr_autotune());
        let m = sys.measure_rx_moderated(burst, packets, gap).unwrap();
        assert!(
            (m.breakdown.total() - cpp).abs() <= 0.051,
            "itr {itr}: cpp {:.1} vs baseline {cpp:.1}",
            m.breakdown.total()
        );
        assert!(
            (m.irqs_per_packet - irqs).abs() <= 0.000_051,
            "itr {itr}: irqs/pkt {:.4} vs baseline {irqs:.4}",
            m.irqs_per_packet
        );
        assert_eq!(m.latency.p50, p50, "itr {itr}: p50");
        assert_eq!(m.latency.p99, p99, "itr {itr}: p99");
        assert_eq!(sys.machine.meter.event("itr_retune"), 0);
    }
}

#[test]
fn tuner_converges_under_sustained_load_and_decays_after_sustained_idle() {
    let opts = SystemOptions {
        num_nics: 4,
        shard: ShardPolicy::FlowHash,
        itr_autotune: true,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    assert!(sys.itr_autotune());
    assert_eq!(sys.world.nics[0].itr(), 0, "starts unmoderated");
    // Sustained back-to-back bursts: every tuner window is busy on
    // every device (FlowHash spreads each 32-burst over all four), so
    // each device climbs the ladder to the bulk rung.
    let mut seq = 0u64;
    for _ in 0..40 {
        let frames: Vec<_> = (0..32).map(|_| rx_frame(&mut seq)).collect();
        sys.receive_burst(&frames).unwrap();
    }
    for dev in 0..4u32 {
        assert_eq!(
            sys.world.nics[dev as usize].itr(),
            2000,
            "device {dev} converged to the bulk rung"
        );
        let t = sys.itr_tuner(dev).unwrap();
        assert!(t.windows > 0 && t.retunes >= 3, "device {dev} tuner ran");
    }
    assert!(sys.machine.meter.event("itr_retune") >= 12);
    sys.drain_moderated().unwrap();
    // Short idle (within the grace): frozen.
    sys.run_idle(2 * AUTOTUNE_WINDOW_CYCLES).unwrap();
    assert_eq!(sys.world.nics[0].itr(), 2000, "frozen within the grace");
    // Sustained idle: decays all the way down — the next interrupt
    // after a quiet spell is delivered immediately.
    let long = (IDLE_DECAY_GRACE_WINDOWS as u64 + 8) * AUTOTUNE_WINDOW_CYCLES;
    sys.run_idle(long).unwrap();
    for dev in 0..4usize {
        assert_eq!(sys.world.nics[dev].itr(), 0, "device {dev} decayed");
    }
}

fn rx_frame(seq: &mut u64) -> twin_net::Frame {
    use twin_net::{EtherType, Frame, MacAddr, MTU};
    *seq += 1;
    Frame {
        dst: MacAddr::for_guest(1),
        src: peer_mac(),
        ethertype: EtherType::Ipv4,
        payload_len: MTU,
        flow: 1 + (*seq % 8) as u32,
        seq: *seq,
    }
}

#[test]
fn autotune_tracks_the_step_profile_regimes() {
    // The tentpole behaviour in one assertion set: across a light→heavy
    // step the tuner sits on a non-gating rung in the light phase and on
    // the bulk rung in the heavy phase, cutting interrupts/packet at
    // least 4× between the phases (the PR 4 acceptance reduction, now
    // reached without anyone programming a static ITR).
    let opts = SystemOptions {
        num_nics: 4,
        shard: ShardPolicy::FlowHash,
        itr_autotune: true,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    let r = measure_rx_autotuned(&mut sys, 32, LoadProfile::Step, 150_000, 256, 384).unwrap();
    assert!(r.autotune);
    assert_eq!(r.phases.len(), 2);
    let (light, heavy) = (&r.phases[0], &r.phases[1]);
    assert!(
        light.itr_end <= 500,
        "light phase sits on a non-gating rung (itr {})",
        light.itr_end
    );
    assert_eq!(heavy.itr_end, 2000, "heavy phase converged to bulk");
    let reduction = light.irqs_per_packet / heavy.irqs_per_packet.max(1e-9);
    assert!(
        reduction >= 4.0,
        "only {reduction:.2}x fewer irqs/pkt in the heavy phase \
         ({:.4} vs {:.4})",
        light.irqs_per_packet,
        heavy.irqs_per_packet
    );
    // Moderation delayed, never dropped: every injected frame — 640
    // warm-up singles plus both phases' settle+measure spans — reached
    // the guest. (`rx_missed` is not asserted: under heavy wedging the
    // NIC counts ring backpressure that the burst loop retries and
    // ultimately delivers.)
    assert_eq!(sys.delivered_rx() as u64, 640 + 2 * (256 + 384));
    assert!(heavy.latency.p99 > 0 && light.latency.p99 > 0);
}
