//! Safety integration tests (paper §4.5): SVM containment of buggy and
//! malicious drivers, watchdog timeouts, stack protection, privileged
//! instruction scanning, and the IOMMU extension.

use twin_machine::ExecMode;
use twindrivers::kernel::e1000;
use twindrivers::{Config, System, SystemError, SystemOptions};

fn sabotage(marker: &str, payload: &str) -> String {
    let src = e1000::source();
    assert!(src.contains(marker), "marker present");
    src.replace(marker, &format!("{marker}\n{payload}"))
}

fn build_evil(payload: &str) -> System {
    let opts = SystemOptions {
        driver_source: Some(sabotage("e1000_xmit_frame:", payload)),
        ..SystemOptions::default()
    };
    System::build_with(Config::TwinDrivers, &opts).expect("evil driver still builds")
}

#[test]
fn wild_hypervisor_write_is_contained() {
    let mut sys = build_evil(
        r#"
    pushl %eax
    movl $0xf0200100, %eax      # the stlb itself
    movl $0xdeadbeef, (%eax)
    popl %eax
"#,
    );
    // Snapshot a hypervisor word the driver tried to clobber.
    let before = sys
        .machine
        .read_u32(sys.world.kernel.space, ExecMode::Hypervisor, 0xf020_0100)
        .unwrap();
    let err = sys.transmit_one().unwrap_err();
    assert!(matches!(err, SystemError::DriverAborted(_)), "{err}");
    let after = sys
        .machine
        .read_u32(sys.world.kernel.space, ExecMode::Hypervisor, 0xf020_0100)
        .unwrap();
    assert_eq!(before, after, "hypervisor memory untouched");
    assert!(sys.world.svm_hyp.as_ref().unwrap().stats().rejected >= 1);
}

#[test]
fn wild_read_of_unmapped_memory_is_contained() {
    let mut sys = build_evil(
        r#"
    pushl %eax
    movl $0x66660000, %eax
    movl (%eax), %eax
    popl %eax
"#,
    );
    let err = sys.transmit_one().unwrap_err();
    assert!(matches!(err, SystemError::DriverAborted(_)));
}

#[test]
fn runaway_driver_hits_watchdog() {
    let mut sys = build_evil("\n.Lforever:\n    jmp .Lforever\n");
    let err = sys.transmit_one().unwrap_err();
    match err {
        SystemError::DriverAborted(reason) => {
            assert!(reason.contains("watchdog"), "{reason}");
        }
        other => panic!("expected watchdog abort, got {other}"),
    }
}

#[test]
fn abort_is_sticky_and_dom0_survives() {
    let mut sys = build_evil(
        r#"
    pushl %eax
    movl $0xf0000000, %eax
    movl $1, (%eax)
    popl %eax
"#,
    );
    assert!(sys.transmit_one().is_err());
    assert!(sys.transmit_one().is_err(), "driver stays aborted");
    // dom0's own packet path (the VM instance in dom0) keeps working:
    // run a config op through the VM instance.
    let dom0 = sys.world.kernel.space;
    let entry = sys.driver.entry("e1000_get_link").unwrap();
    let r = twindrivers::kernel::call_function(
        &mut sys.machine,
        &mut sys.world,
        dom0,
        ExecMode::Guest,
        twin_kernel::DOM0_STACK_BASE + twin_kernel::DOM0_STACK_PAGES * 4096,
        entry,
        &[0],
        2_000_000,
    )
    .unwrap();
    assert_eq!(r, 1);
}

#[test]
fn privileged_instruction_rejected_at_rewrite_time() {
    // Paper §4.5.2: privileged instructions "can be detected and
    // prevented by static inspection of the driver code during binary
    // translation".
    let opts = SystemOptions {
        driver_source: Some(sabotage("e1000_xmit_frame:", "    hlt\n")),
        ..SystemOptions::default()
    };
    let err = System::build_with(Config::TwinDrivers, &opts).unwrap_err();
    match err {
        SystemError::Build(msg) => assert!(msg.contains("privileged"), "{msg}"),
        other => panic!("expected build rejection, got {other}"),
    }
}

#[test]
fn baseline_configs_accept_the_same_driver() {
    // The static scan only runs for the rewritten (hypervisor) driver;
    // native configs load the original unmodified.
    let opts = SystemOptions {
        driver_source: Some(e1000::source()),
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::NativeLinux, &opts).unwrap();
    sys.transmit_one().unwrap();
}

#[test]
fn stack_checks_extension_still_works_end_to_end() {
    let opts = SystemOptions {
        rewrite: twin_rewriter::RewriteOptions {
            stack_checks: true,
            ..twin_rewriter::RewriteOptions::default()
        },
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    for _ in 0..10 {
        sys.transmit_one().unwrap();
        sys.receive_one().unwrap();
    }
    assert_eq!(sys.take_wire_frames().len(), 10);
    assert_eq!(sys.delivered_rx(), 10);
}

#[test]
fn iommu_blocks_rogue_dma() {
    // A malicious driver writes a descriptor pointing at hypervisor-
    // reserved physical memory. SVM cannot catch DMA (paper §4.5 admits
    // this); the IOMMU extension does.
    let evil = sabotage(
        "    movl 20(%ebx), %eax\n    movl %eax, 0x3818(%ecx)     # TDT: the posted doorbell write",
        "", // no-op marker use; real sabotage below
    );
    let _ = evil;
    // Instead of patching assembly, poke a rogue descriptor directly
    // between xmit and the doorbell: simplest is to build with IOMMU and
    // scribble a descriptor, then ring TDT through the device model.
    let opts = SystemOptions {
        iommu: true,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    // Legitimate traffic passes.
    for _ in 0..5 {
        sys.transmit_one().unwrap();
    }
    assert_eq!(sys.world.iommu.as_ref().unwrap().blocked, 0);
    // Rogue descriptor: point at a frame that belongs to nobody.
    let tdbal = sys.world.nics[0].mmio_read(twin_nic::regs::TDBAL) as u64;
    let tdh = sys.world.nics[0].mmio_read(twin_nic::regs::TDH);
    let daddr = tdbal + tdh as u64 * twin_nic::DESC_SIZE;
    sys.machine.phys.write_u32(daddr, 0x0F00_0000); // unowned frame
    sys.machine.phys.write_u32(daddr + 8, 64);
    sys.machine
        .phys
        .write_u8(daddr + 11, twin_nic::txcmd::EOP | twin_nic::txcmd::RS);
    let iommu = sys.world.iommu.as_mut().unwrap();
    let err = iommu
        .check_tx_ring(&sys.machine, &mut sys.world.nics[0], tdh + 1)
        .unwrap_err();
    assert!(matches!(err, twin_machine::Fault::EnvFault(_)));
    assert_eq!(sys.world.iommu.as_ref().unwrap().blocked, 1);
}
