//! End-to-end integration tests of the TwinDrivers pipeline across
//! crates: derivation, dual instances over shared data, fast-path
//! behaviour, and the concurrent config-path/fast-path split.

use twin_machine::{CostDomain, ExecMode};
use twindrivers::kernel::e1000;
use twindrivers::{Config, System, SystemOptions};

#[test]
fn all_four_systems_move_packets() {
    for config in Config::ALL {
        let mut sys = System::build(config).unwrap_or_else(|e| panic!("{config}: {e}"));
        for _ in 0..10 {
            sys.transmit_one()
                .unwrap_or_else(|e| panic!("{config} tx: {e}"));
        }
        assert_eq!(sys.take_wire_frames().len(), 10, "{config} transmit");
        for _ in 0..10 {
            sys.receive_one()
                .unwrap_or_else(|e| panic!("{config} rx: {e}"));
        }
        assert_eq!(sys.delivered_rx(), 10, "{config} receive");
    }
}

#[test]
fn both_instances_share_one_copy_of_driver_data() {
    // The hypervisor instance transmits; the *VM instance's* adapter
    // statistics must advance, because there is a single data instance
    // in dom0 (paper §3.2).
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    let adapter = sys.driver.data_symbol("adapter").unwrap();
    let dom0 = sys.world.kernel.space;
    let before = sys
        .machine
        .read_u32(dom0, ExecMode::Guest, adapter + e1000::adapter::TX_PACKETS)
        .unwrap();
    for _ in 0..7 {
        sys.transmit_one().unwrap();
    }
    let after = sys
        .machine
        .read_u32(dom0, ExecMode::Guest, adapter + e1000::adapter::TX_PACKETS)
        .unwrap();
    assert_eq!(
        after - before,
        7,
        "stats written by the hypervisor instance"
    );

    // And the VM instance reads them through its own entry point.
    let get_stats = sys.driver.entry("e1000_get_stats").unwrap();
    let netdev = sys.netdev as u32;
    let stats_ptr = twindrivers::kernel::call_function(
        &mut sys.machine,
        &mut sys.world,
        dom0,
        ExecMode::Guest,
        twin_kernel::DOM0_STACK_BASE + twin_kernel::DOM0_STACK_PAGES * 4096,
        get_stats,
        &[netdev],
        1_000_000,
    )
    .unwrap();
    assert_eq!(stats_ptr as u64, adapter + e1000::adapter::TX_PACKETS);
}

#[test]
fn config_ops_run_in_vm_instance_while_fast_path_runs_in_hypervisor() {
    // Paper §3.1: the VM instance keeps handling ethtool-style requests
    // and the watchdog while the hypervisor instance does TX/RX.
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    let dom0 = sys.world.kernel.space;
    let stack = twin_kernel::DOM0_STACK_BASE + twin_kernel::DOM0_STACK_PAGES * 4096;

    for i in 0..20 {
        sys.transmit_one().unwrap();
        if i % 5 == 0 {
            // ethtool get_link through the indirect-dispatch table.
            let dispatch = sys.driver.entry("e1000_ethtool_dispatch").unwrap();
            let r = twindrivers::kernel::call_function(
                &mut sys.machine,
                &mut sys.world,
                dom0,
                ExecMode::Guest,
                stack,
                dispatch,
                &[2, 0],
                2_000_000,
            )
            .unwrap();
            assert_eq!(r, 1, "link is up");
        }
    }
    // Watchdog timer fires in dom0 (reads NIC stats registers): idle
    // past its 100-jiffy deadline and the virtual-time engine runs it in
    // the VM instance.
    assert!(
        !sys.world.kernel.timers.is_empty(),
        "watchdog armed by probe"
    );
    sys.run_idle(1000 * twin_kernel::CYCLES_PER_JIFFY).unwrap();
    let adapter = sys.driver.data_symbol("adapter").unwrap();
    let wd = sys
        .machine
        .read_u32(
            dom0,
            ExecMode::Guest,
            adapter + e1000::adapter::WATCHDOG_RUNS,
        )
        .unwrap();
    assert!(wd >= 1, "watchdog ran in the VM instance");
    assert_eq!(sys.take_wire_frames().len(), 20);
}

#[test]
fn twin_fast_path_makes_no_upcalls_by_default() {
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    for _ in 0..20 {
        sys.transmit_one().unwrap();
        sys.receive_one().unwrap();
    }
    assert_eq!(
        sys.machine.meter.event("upcall"),
        0,
        "all ten fast-path routines are implemented in the hypervisor"
    );
    assert_eq!(sys.machine.meter.event("domain_switch"), 0);
}

#[test]
fn forced_upcalls_reach_dom0_and_still_work() {
    let opts = SystemOptions {
        upcall_count: 9,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
    for _ in 0..5 {
        sys.transmit_one().unwrap();
    }
    assert_eq!(sys.take_wire_frames().len(), 5, "upcalled path is correct");
    assert!(sys.machine.meter.event("upcall") >= 5);
    assert!(
        sys.machine.meter.event("domain_switch") >= 10,
        "each guest-context upcall switches to dom0 and back"
    );
}

#[test]
fn rewritten_driver_category_grows_but_stack_costs_do_not() {
    // The SVM tax lands on the driver; the guest kernel cost per packet
    // is the same stack either way.
    let mut native = System::build(Config::NativeLinux).unwrap();
    let nb = native.measure_tx(60).unwrap();
    let mut twin = System::build(Config::TwinDrivers).unwrap();
    let tb = twin.measure_tx(60).unwrap();
    assert!(tb.cycles(CostDomain::Driver) > 1.6 * nb.cycles(CostDomain::Driver));
    // Native stack cost ≈ twin guest stack cost (different category).
    let native_stack = nb.cycles(CostDomain::Dom0);
    let twin_stack = tb.cycles(CostDomain::DomU);
    let ratio = twin_stack / native_stack;
    assert!((0.5..1.5).contains(&ratio), "stack cost ratio {ratio:.2}");
}

#[test]
fn stlb_warm_after_startup() {
    let mut sys = System::build(Config::TwinDrivers).unwrap();
    // Warm up past one full RX-ring cycle (128 descriptors).
    for _ in 0..160 {
        sys.transmit_one().unwrap();
        sys.receive_one().unwrap();
    }
    let misses_before = sys.world.svm_hyp.as_ref().unwrap().stats().misses;
    for _ in 0..100 {
        sys.transmit_one().unwrap();
        sys.receive_one().unwrap();
    }
    let misses_after = sys.world.svm_hyp.as_ref().unwrap().stats().misses;
    let new_misses = misses_after - misses_before;
    assert!(
        new_misses <= 40,
        "steady state should mostly hit the stlb ({new_misses} new misses over 200 packets)"
    );
}

#[test]
fn header_copy_threshold_scales_copy_cost() {
    let small = SystemOptions {
        header_copy_bytes: 32,
        ..SystemOptions::default()
    };
    let large = SystemOptions {
        header_copy_bytes: 1024,
        ..SystemOptions::default()
    };
    let mut a = System::build_with(Config::TwinDrivers, &small).unwrap();
    let ba = a.measure_tx(40).unwrap();
    let mut b = System::build_with(Config::TwinDrivers, &large).unwrap();
    let bb = b.measure_tx(40).unwrap();
    assert!(
        bb.cycles(CostDomain::Xen) > ba.cycles(CostDomain::Xen) + 1000.0,
        "copying 1 KiB headers must cost visibly more than 32 B"
    );
    // Both still deliver full frames.
    a.take_wire_frames();
    for _ in 0..3 {
        a.transmit_one().unwrap();
    }
    assert_eq!(a.take_wire_frames()[0].len(), 1514);
}
