#!/usr/bin/env python3
"""Summarizes a flight-recorder chrome trace (chrome://tracing JSON).

Reads one `*.trace.json` file produced under `TWIN_TRACE_OUT` (by the
sweep harnesses' export hooks or `System::export_trace`) and prints the
event census a reviewer wants before opening the UI: instant counts by
event name, poll-mode episode count and total residency per device
track, and the span covered. Exits 1 when the file is not a well-formed
trace (no `traceEvents` array, or an event without a name/phase) so CI
can gate on artifact sanity, and, with `--require`, when a named event
kind is absent — the livelock artifact must contain NAPI episodes and
early-drop instants, not just load.

Usage: trace_summary.py TRACE.json [--require poll_mode --require early_drop]
       trace_summary.py --self-test
"""

import argparse
import json
import sys
from collections import Counter


def summarize(trace):
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("no traceEvents array")
    names = Counter()
    episodes = Counter()
    residency = Counter()
    ts_lo, ts_hi = None, 0.0
    for e in events:
        name, ph = e.get("name"), e.get("ph")
        if not isinstance(name, str) or not isinstance(ph, str):
            raise ValueError(f"event without name/ph: {e!r}")
        if ph == "M":
            continue
        names[name] += 1
        ts = float(e.get("ts", 0.0))
        ts_lo = ts if ts_lo is None else min(ts_lo, ts)
        ts_hi = max(ts_hi, ts + float(e.get("dur", 0.0)))
        if ph == "X":
            track = f"pid{e.get('pid')}/tid{e.get('tid')}"
            episodes[track] += 1
            residency[track] += float(e.get("dur", 0.0))
    return {
        "events": dict(names),
        "episodes": dict(episodes),
        "residency_us": dict(residency),
        "span_us": (ts_hi - ts_lo) if ts_lo is not None else 0.0,
    }


def report(path, required):
    with open(path) as f:
        trace = json.load(f)
    s = summarize(trace)
    print(f"{path}: {sum(s['events'].values())} events over "
          f"{s['span_us']:.1f} us")
    for name, n in sorted(s["events"].items()):
        print(f"  {name:<24} {n:>8}")
    for track in sorted(s["episodes"]):
        print(f"  poll-mode {track}: {s['episodes'][track]} episodes, "
              f"{s['residency_us'][track]:.1f} us resident")
    missing = [r for r in required if s["events"].get(r, 0) == 0]
    if missing:
        print(f"FAIL: required event kinds absent: {', '.join(missing)}")
        return 1
    return 0


def self_test():
    good = {"traceEvents": [
        {"name": "process_name", "ph": "M", "pid": 4,
         "args": {"name": "e1000"}},
        {"name": "poll_mode", "ph": "X", "pid": 4, "tid": 0,
         "ts": 10.0, "dur": 5.0},
        {"name": "early_drop", "ph": "i", "s": "t", "pid": 3, "tid": 1001,
         "ts": 12.0, "args": {"guest": 1}},
        {"name": "early_drop", "ph": "i", "s": "t", "pid": 3, "tid": 1001,
         "ts": 13.0, "args": {"guest": 1}},
    ]}
    s = summarize(good)
    assert s["events"] == {"poll_mode": 1, "early_drop": 2}, s
    assert s["episodes"] == {"pid4/tid0": 1}, s
    assert abs(s["residency_us"]["pid4/tid0"] - 5.0) < 1e-9, s
    assert abs(s["span_us"] - 5.0) < 1e-9, s

    # Metadata-only traces are well-formed but empty.
    empty = {"traceEvents": [
        {"name": "process_name", "ph": "M", "pid": 1, "args": {}}]}
    assert summarize(empty)["events"] == {}, "metadata is not an event"

    # Malformed traces must raise, not pass silently.
    for bad in ({}, {"traceEvents": 3},
                {"traceEvents": [{"ph": "i"}]},
                {"traceEvents": [{"name": "x"}]}):
        try:
            summarize(bad)
        except ValueError:
            pass
        else:
            raise AssertionError(f"malformed trace accepted: {bad!r}")
    print("trace_summary self-test: OK")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace", nargs="?", help="a *.trace.json file")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME",
                    help="fail unless this event kind is present")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if not args.trace:
        ap.error("a trace file (or --self-test) is required")
    try:
        return report(args.trace, args.require)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"FAIL: {args.trace}: {e}")
        return 1


if __name__ == "__main__":
    sys.exit(main())
