#!/usr/bin/env bash
# Matrix driver for the bench sweeps and their regression gates.
#
# One manifest line per sweep: `bench  baseline  output`. A `-` baseline
# means the sweep runs ungated (it still enforces any acceptance checks
# built into the bench itself). Adding a sweep to CI is adding a line.
#
# Environment:
#   TWIN_BENCH_PACKETS    forwarded to the benches (unset = full budget)
#   TWIN_BENCH_TOLERANCE  gate tolerance (default 0.10)
#   TWIN_BENCH_GATE=0     run the sweeps but skip the baseline gates
#                         (nightly full-budget runs: the committed
#                         baselines are 64-packet numbers)
set -euo pipefail
cd "$(dirname "$0")/.."

tolerance="${TWIN_BENCH_TOLERANCE:-0.10}"
gate="${TWIN_BENCH_GATE:-1}"

manifest="
batch_sweep       -                             -
shard_sweep       bench/baseline.json           BENCH_shard.json
upcall_sweep      bench/baseline_upcall.json    BENCH_upcall.json
moderation_sweep  bench/baseline_itr.json       BENCH_itr.json
autotune_sweep    bench/baseline_autotune.json  BENCH_autotune.json
zerocopy_sweep    bench/baseline_zerocopy.json  BENCH_zerocopy.json
livelock_sweep    bench/baseline_livelock.json  BENCH_livelock.json
fault_sweep       bench/baseline_fault.json     BENCH_fault.json
affinity_sweep    bench/baseline_affinity.json  BENCH_affinity.json
"

while read -r bench baseline output; do
  [ -n "$bench" ] || continue
  echo "==> $bench"
  cargo bench -p twin-bench --bench "$bench"
  if [ "$baseline" != "-" ] && [ "$gate" != "0" ]; then
    python3 bench/check_regression.py "$baseline" "$output" --tolerance "$tolerance"
  fi
done <<EOF
$manifest
EOF
