#!/usr/bin/env python3
"""Bench-regression gate for the sweep harnesses.

Compares a freshly produced sweep JSON (BENCH_shard.json,
BENCH_upcall.json, BENCH_itr.json, BENCH_autotune.json) against its
committed baseline and fails (exit 1)
when any sweep point's amortized cycles/packet regresses by more than
the tolerance (default 10%), or when a sweep point disappears. Sweep
points present in the current run but absent from the baseline are
reported as warnings — new sweeps should land with a refreshed baseline
so they are gated from day one. Improvements pass; a clearly better run
should be accompanied by a refreshed baseline (regenerate with e.g.
`TWIN_BENCH_PACKETS=64 cargo bench -p twin-bench --bench shard_sweep &&
cp BENCH_shard.json bench/baseline.json`).

Entries are keyed by their identity fields (config, nics, burst,
upcalls, itr, mode, zerocopy, policy, duty — whichever are present) and
compared on every `*_cycles_per_packet` field both sides share.

Usage: check_regression.py BASELINE CURRENT [--tolerance 0.10]
       check_regression.py --self-test
"""

import argparse
import json
import sys

# Fields that identify a sweep point; everything else is a measurement.
# "profile"/"phase" key the autotune sweep's shifting-load points (each
# load-profile phase is its own gated point); "zerocopy" splits the
# zero-copy sweep's on/off modes into separately gated points;
# "offered"/"guest" key the livelock sweep's offered-load multiples and
# per-guest breakdowns; "policy"/"duty" key the scheduler-affinity
# sweep's shard-policy × run-duty-cycle grid.
ID_FIELDS = ("config", "profile", "phase", "nics", "burst", "upcalls",
             "itr", "mode", "zerocopy", "offered", "guest", "policy",
             "duty")


def key_of(entry):
    return tuple((f, entry[f]) for f in ID_FIELDS if f in entry)


def label_of(key):
    return " ".join(f"{f}={v}" for f, v in key)


def metrics_of(entry):
    return sorted(f for f in entry if f.endswith("_cycles_per_packet"))


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {key_of(e): e for e in data["entries"]}, data.get("packets")


def self_test():
    """Exercises the gate against synthetic baselines: well-formed input
    must load and key correctly, malformed input (missing "entries",
    non-numeric metrics) must fail loudly instead of passing vacuously."""
    import io
    import contextlib

    failures = []

    def check(name, ok):
        print(f"  {'ok  ' if ok else 'FAIL'}  {name}")
        if not ok:
            failures.append(name)

    good = {"packets": 64, "entries": [
        {"config": "a", "nics": 1, "burst": 8, "zerocopy": True,
         "rx_cycles_per_packet": 100.0},
        {"config": "a", "nics": 1, "burst": 8, "zerocopy": False,
         "rx_cycles_per_packet": 200.0},
    ]}
    keyed = {key_of(e): e for e in good["entries"]}
    check("zerocopy on/off key distinct sweep points", len(keyed) == 2)
    check("identity fields ordered and present",
          key_of(good["entries"][0]) ==
          (("config", "a"), ("nics", 1), ("burst", 8), ("zerocopy", True)))
    check("metrics are the *_cycles_per_packet fields",
          metrics_of(good["entries"][0]) == ["rx_cycles_per_packet"])

    # A regressed current run must fail the gate.
    regressed = {"packets": 64, "entries": [
        dict(good["entries"][0], rx_cycles_per_packet=150.0),
        good["entries"][1],
    ]}
    check("regression beyond tolerance fails",
          gate(keyed, {key_of(e): e for e in regressed["entries"]},
               0.10, quiet=True) == 1)
    check("identical run passes", gate(keyed, dict(keyed), 0.10, quiet=True) == 0)

    # Livelock identity: the offered-load multiple and the guest axis
    # key distinct gated points.
    live = [
        {"config": "a", "profile": "flood_one_guest", "mode": "controlled",
         "offered": 1.0, "guest": "all", "rx_cycles_per_packet": 100.0},
        {"config": "a", "profile": "flood_one_guest", "mode": "controlled",
         "offered": 10.0, "guest": "all", "rx_cycles_per_packet": 110.0},
    ]
    check("offered-load multiples key distinct livelock points",
          len({key_of(e) for e in live}) == 2)
    check("guest is an identity field", ("guest", "all") in key_of(live[0]))

    # Stale-baseline detection: a baseline keyed by identity fields no
    # current entry emits must warn (the points also fail as missing —
    # the warning says *why*).
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = gate({key_of(e): e for e in live},
                  {key_of(e): e for e in good["entries"]}, 0.10)
    check("baseline with vanished identity fields fails the gate", rc == 1)
    check("stale baseline identity fields warn",
          "stale baseline" in out.getvalue())

    # Malformed baselines must raise, not silently gate nothing.
    for name, blob in [
        ("baseline without \"entries\" raises", '{"packets": 64}'),
        ("non-numeric metric raises",
         '{"entries": [{"config": "a", "rx_cycles_per_packet": "fast"}]}'),
    ]:
        try:
            entries, _ = (lambda d: ({key_of(e): e for e in d["entries"]},
                                     d.get("packets")))(json.loads(blob))
            with contextlib.redirect_stdout(io.StringIO()):
                gate(entries, entries, 0.10, quiet=True)
            check(name, False)
        except (KeyError, TypeError):
            check(name, True)

    if failures:
        print(f"\nself-test FAILED ({len(failures)} issue(s))")
        return 1
    print("\nself-test passed")
    return 0


def gate(base, cur, tolerance, quiet=False):
    """Compares keyed baseline/current entries; returns the exit code."""
    failures = []
    for key, b in sorted(base.items()):
        c = cur.get(key)
        label = label_of(key)
        if c is None:
            failures.append(f"{label}: sweep point missing from current run")
            continue
        for field in metrics_of(b):
            if field not in c:
                failures.append(f"{label}: field {field} missing from current run")
                continue
            old, new = b[field], c[field]
            limit = old * (1.0 + tolerance)
            delta = (new - old) / old if old else 0.0
            status = "FAIL" if new > limit else "ok"
            if not quiet:
                print(f"  {status}  {label} {field}: {old:.1f} -> {new:.1f} ({delta:+.1%})")
            if new > limit:
                failures.append(
                    f"{label}: {field} regressed {delta:+.1%} "
                    f"({old:.1f} -> {new:.1f}, limit {tolerance:.0%})")

    # Unknown points are not gated — surface them so the baseline gets
    # refreshed instead of silently leaving new sweeps unprotected.
    unknown = [k for k in cur if k not in base]
    if not quiet:
        for k in sorted(unknown):
            print(f"  WARN  {label_of(k)}: not in baseline (ungated; refresh the baseline)")

    # Stale-baseline detection: an identity *field* that appears in the
    # baseline's keys but in no current entry means the sweep stopped
    # emitting it (renamed or dropped) — every one of those baseline
    # points would "go missing" for a structural reason, not a perf one.
    base_fields = {f for key in base for f, _ in key}
    cur_fields = {f for key in cur for f, _ in key}
    stale = sorted(base_fields - cur_fields)
    if stale and not quiet:
        print(f"  WARN  baseline identity field(s) {', '.join(stale)} absent "
              "from every current entry — stale baseline? regenerate it")

    if failures:
        if not quiet:
            print(f"\nbench regression gate FAILED ({len(failures)} issue(s)):")
            for f in failures:
                print(f"  - {f}")
        return 1
    if not quiet:
        print(f"\nbench regression gate passed ({len(base)} sweep points, "
              f"{len(unknown)} ungated warning(s), tolerance {tolerance:.0%})")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional cycles/packet regression (default 0.10)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the gate's own sanity checks and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        ap.error("baseline and current are required unless --self-test")

    base, base_pkts = load(args.baseline)
    cur, cur_pkts = load(args.current)
    if base_pkts != cur_pkts:
        print(f"note: packet counts differ (baseline {base_pkts}, current {cur_pkts}); "
              "comparison is still amortized per packet")
    return gate(base, cur, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
