#!/usr/bin/env python3
"""Bench-regression gate for the shard sweep.

Compares a freshly produced BENCH_shard.json against the committed
bench/baseline.json and fails (exit 1) when any sweep point's amortized
cycles/packet regresses by more than the tolerance (default 10%), or
when a sweep point disappears. Improvements and new points pass; a
clearly better run should be accompanied by a refreshed baseline
(regenerate with `TWIN_BENCH_PACKETS=64 cargo bench -p twin-bench
--bench shard_sweep && cp BENCH_shard.json bench/baseline.json`).

Usage: check_regression.py BASELINE CURRENT [--tolerance 0.10]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        (e["config"], e["nics"], e["burst"]): e for e in data["entries"]
    }, data.get("packets")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional cycles/packet regression (default 0.10)")
    args = ap.parse_args()

    base, base_pkts = load(args.baseline)
    cur, cur_pkts = load(args.current)
    if base_pkts != cur_pkts:
        print(f"note: packet counts differ (baseline {base_pkts}, current {cur_pkts}); "
              "comparison is still amortized per packet")

    failures = []
    for key, b in sorted(base.items()):
        c = cur.get(key)
        label = f"config={key[0]} nics={key[1]} burst={key[2]}"
        if c is None:
            failures.append(f"{label}: sweep point missing from current run")
            continue
        for field in ("tx_cycles_per_packet", "rx_cycles_per_packet"):
            old, new = b[field], c[field]
            limit = old * (1.0 + args.tolerance)
            delta = (new - old) / old if old else 0.0
            status = "FAIL" if new > limit else "ok"
            print(f"  {status}  {label} {field}: {old:.1f} -> {new:.1f} ({delta:+.1%})")
            if new > limit:
                failures.append(
                    f"{label}: {field} regressed {delta:+.1%} "
                    f"({old:.1f} -> {new:.1f}, limit {args.tolerance:.0%})")

    if failures:
        print(f"\nbench regression gate FAILED ({len(failures)} issue(s)):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nbench regression gate passed ({len(base)} sweep points, "
          f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
