#!/usr/bin/env python3
"""Bench-regression gate for the sweep harnesses.

Compares a freshly produced sweep JSON (BENCH_shard.json,
BENCH_upcall.json, BENCH_itr.json, BENCH_autotune.json) against its
committed baseline and fails (exit 1)
when any sweep point's amortized cycles/packet regresses by more than
the tolerance (default 10%), or when a sweep point disappears. Sweep
points present in the current run but absent from the baseline are
reported as warnings — new sweeps should land with a refreshed baseline
so they are gated from day one. Improvements pass; a clearly better run
should be accompanied by a refreshed baseline (regenerate with e.g.
`TWIN_BENCH_PACKETS=64 cargo bench -p twin-bench --bench shard_sweep &&
cp BENCH_shard.json bench/baseline.json`).

Entries are keyed by their identity fields (config, nics, burst,
upcalls, itr, mode — whichever are present) and compared on every
`*_cycles_per_packet` field both sides share.

Usage: check_regression.py BASELINE CURRENT [--tolerance 0.10]
"""

import argparse
import json
import sys

# Fields that identify a sweep point; everything else is a measurement.
# "profile"/"phase" key the autotune sweep's shifting-load points (each
# load-profile phase is its own gated point).
ID_FIELDS = ("config", "profile", "phase", "nics", "burst", "upcalls", "itr", "mode")


def key_of(entry):
    return tuple((f, entry[f]) for f in ID_FIELDS if f in entry)


def label_of(key):
    return " ".join(f"{f}={v}" for f, v in key)


def metrics_of(entry):
    return sorted(f for f in entry if f.endswith("_cycles_per_packet"))


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {key_of(e): e for e in data["entries"]}, data.get("packets")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional cycles/packet regression (default 0.10)")
    args = ap.parse_args()

    base, base_pkts = load(args.baseline)
    cur, cur_pkts = load(args.current)
    if base_pkts != cur_pkts:
        print(f"note: packet counts differ (baseline {base_pkts}, current {cur_pkts}); "
              "comparison is still amortized per packet")

    failures = []
    for key, b in sorted(base.items()):
        c = cur.get(key)
        label = label_of(key)
        if c is None:
            failures.append(f"{label}: sweep point missing from current run")
            continue
        for field in metrics_of(b):
            if field not in c:
                failures.append(f"{label}: field {field} missing from current run")
                continue
            old, new = b[field], c[field]
            limit = old * (1.0 + args.tolerance)
            delta = (new - old) / old if old else 0.0
            status = "FAIL" if new > limit else "ok"
            print(f"  {status}  {label} {field}: {old:.1f} -> {new:.1f} ({delta:+.1%})")
            if new > limit:
                failures.append(
                    f"{label}: {field} regressed {delta:+.1%} "
                    f"({old:.1f} -> {new:.1f}, limit {args.tolerance:.0%})")

    # Unknown points are not gated — surface them so the baseline gets
    # refreshed instead of silently leaving new sweeps unprotected.
    unknown = [k for k in cur if k not in base]
    for k in sorted(unknown):
        print(f"  WARN  {label_of(k)}: not in baseline (ungated; refresh the baseline)")

    if failures:
        print(f"\nbench regression gate FAILED ({len(failures)} issue(s)):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nbench regression gate passed ({len(base)} sweep points, "
          f"{len(unknown)} ungated warning(s), tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
